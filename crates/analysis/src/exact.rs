//! Exact critical-point supremum evaluation — the grid-free engine
//! behind [`crate::supremum`]'s hot paths.
//!
//! [`faultline_core::exact`] reduces a fleet's visit times over a
//! window to per-interval affine sets. Here we turn those into the
//! exact supremum of `K(x) = T_k(x) / |x|`: on each open interval the
//! k-th order statistic of affines is piecewise affine with
//! breakpoints only at pairwise crossings, and between breakpoints
//! `K(x) = slope + intercept / x` is monotone — so the interval
//! supremum is a max over the interval endpoints plus the crossings,
//! each evaluated exactly. Evaluating an interval's affines *at* an
//! endpoint yields the one-sided limit there, which dominates the
//! pointwise value (the pointwise visit minimizes over a superset of
//! segments), so the scan provably dominates every grid evaluation of
//! the same fleet.
//!
//! The expected-cost variant applies the same candidate argument to
//! the p-faulty closed form of [`faultline_sim::expected_outcome`]:
//! with a fixed membership and ordering of in-horizon visit affines,
//! the expectation is affine in `x`, so extra candidates are needed
//! only where two visit affines cross or where one crosses the
//! horizon.

use faultline_core::coverage::{prefer_argmax, Fleet};
use faultline_core::exact::{all_visit_cover, first_visit_cover, mirrored, Affine, WindowCover};
use faultline_core::{Error, Geometry, Interval, Result};

/// Exponent of the pressure's generalized mean: high enough that only
/// interval suprema within a fraction of a percent of the global
/// supremum contribute.
pub const PRESSURE_EXPONENT: i32 = 32;

/// The result of an exact critical-point supremum scan over
/// `[-xmax, -1] ∪ [1, xmax]` (plus the right-hand limits at `±xmax`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactScan {
    /// The supremum of the scanned ratio; infinite when any interval
    /// is uncovered.
    pub ratio: f64,
    /// The position attaining the supremum (deterministic under ties:
    /// smallest magnitude, then the positive side). For an uncovered
    /// scan, the lower endpoint of the uncovered interval closest to
    /// the origin.
    pub argmax: f64,
    /// Number of inter-critical-point intervals (both sides, window
    /// edges included) not covered by the required visit count.
    pub uncovered: usize,
    /// Total number of critical points enumerated across both sides —
    /// the exact analogue of the historical grid size.
    pub critical_points: usize,
    /// Power-[`PRESSURE_EXPONENT`] mean of `interval supremum /
    /// global supremum` over the covered intervals, in `(0, 1]`;
    /// `1.0` when the scan is uncovered or non-finite. Proportional
    /// schedules equalize every turning-point peak, so their pressure
    /// sits essentially at 1.
    pub pressure: f64,
}

/// One side's scan accumulator, in positive-window coordinates.
struct SideScan {
    best: Option<(f64, f64)>,
    uncovered: usize,
    uncovered_x: Option<f64>,
    interval_sups: Vec<f64>,
    critical_points: usize,
}

fn merge_sides(pos: SideScan, neg: SideScan) -> ExactScan {
    let critical_points = pos.critical_points + neg.critical_points;
    let uncovered = pos.uncovered + neg.uncovered;
    // Fold the mirrored side back to signed coordinates.
    let neg_best = neg.best.map(|(r, x)| (r, -x));
    let neg_uncovered_x = neg.uncovered_x.map(|x| -x);
    if uncovered > 0 {
        let argmax = match (pos.uncovered_x, neg_uncovered_x) {
            (Some(p), Some(n)) => {
                if prefer_argmax(p, n) {
                    p
                } else {
                    n
                }
            }
            (Some(p), None) => p,
            (None, Some(n)) => n,
            (None, None) => unreachable!("uncovered > 0 implies an uncovered interval"),
        };
        return ExactScan {
            ratio: f64::INFINITY,
            argmax,
            uncovered,
            critical_points,
            pressure: 1.0,
        };
    }
    let (ratio, argmax) = match (pos.best, neg_best) {
        (Some((pr, px)), Some((nr, nx))) => {
            if nr > pr || (nr == pr && prefer_argmax(nx, px)) {
                (nr, nx)
            } else {
                (pr, px)
            }
        }
        (Some(p), None) => p,
        (None, Some(n)) => n,
        (None, None) => (0.0, 0.0),
    };
    let pressure = if ratio.is_finite() && ratio > 0.0 {
        let sups = pos.interval_sups.iter().chain(&neg.interval_sups);
        let count = pos.interval_sups.len() + neg.interval_sups.len();
        let mass: f64 = sups.map(|&s| (s / ratio).powi(PRESSURE_EXPONENT)).sum();
        if count > 0 {
            mass / count as f64
        } else {
            1.0
        }
    } else {
        1.0
    };
    ExactScan { ratio, argmax, uncovered, critical_points, pressure }
}

/// Max of `value(x) / x` over the candidate positions, with the
/// deterministic tie-break (smaller `x` wins within a side).
fn best_over_candidates(
    candidates: &[f64],
    mut value_at: impl FnMut(f64) -> Option<f64>,
) -> Option<(f64, f64)> {
    let mut best: Option<(f64, f64)> = None;
    for &x in candidates {
        let v = value_at(x)?;
        let r = v / x;
        let replace = match best {
            None => true,
            Some((br, bx)) => r > br || (r == br && prefer_argmax(x, bx)),
        };
        if replace {
            best = Some((r, x));
        }
    }
    best
}

/// Pushes the pairwise crossings of `affines` that fall strictly
/// inside `(lo, hi)` onto `candidates`.
pub fn push_crossings(affines: &[Affine], lo: f64, hi: f64, candidates: &mut Vec<f64>) {
    for (i, a) in affines.iter().enumerate() {
        for b in &affines[i + 1..] {
            if let Some(x) = a.crossing(b) {
                if x > lo && x < hi {
                    candidates.push(x);
                }
            }
        }
    }
}

/// Scans one side: the supremum of `T_k(x) / x` over `[1, xmax]`
/// including the right-hand limit at `xmax` (the beyond-window
/// interval evaluated at its lower endpoint).
fn scan_side_worst_case(cover: &WindowCover, k: usize) -> SideScan {
    let mut side = SideScan {
        best: None,
        uncovered: 0,
        uncovered_x: None,
        interval_sups: Vec::with_capacity(cover.intervals().len()),
        critical_points: cover.cuts().len(),
    };
    let mark_uncovered = |side: &mut SideScan, x: f64| {
        side.uncovered += 1;
        if side.uncovered_x.is_none_or(|u| x < u) {
            side.uncovered_x = Some(x);
        }
    };
    if cover.beyond().is_none() {
        // No trajectory reaches past the window: the right-hand limit
        // at xmax is unprobed, so the window edge counts as uncovered.
        let hi = cover.cuts()[cover.cuts().len() - 1];
        mark_uncovered(&mut side, hi);
    }
    let mut candidates: Vec<f64> = Vec::new();
    let mut times: Vec<f64> = Vec::new();
    for (i, affines) in cover.intervals().iter().enumerate() {
        let (lo, hi) = cover.interval_bounds(i);
        if affines.len() < k {
            mark_uncovered(&mut side, lo);
            continue;
        }
        candidates.clear();
        candidates.push(lo);
        if !cover.is_beyond(i) {
            // Inside the window both limits and every crossing are
            // candidates; the beyond interval is only ever evaluated
            // at the window edge (the right-hand limit at xmax).
            candidates.push(hi);
            push_crossings(affines, lo, hi, &mut candidates);
        }
        let best = best_over_candidates(&candidates, |x| {
            times.clear();
            times.extend(affines.iter().map(|a| a.eval(x)));
            times.sort_by(f64::total_cmp);
            Some(times[k - 1])
        })
        .expect("worst-case evaluation is total over covered intervals");
        side.interval_sups.push(best.0);
        let replace = match side.best {
            None => true,
            Some((br, bx)) => best.0 > br || (best.0 == br && prefer_argmax(best.1, bx)),
        };
        if replace {
            side.best = Some(best);
        }
    }
    side
}

/// The exact supremum of `K(x) = T_k(x) / |x|` over
/// `[-xmax, -1] ∪ [1, xmax]`, including the right-hand limits at
/// `±xmax` — the exact replacement for a grid scan over
/// [`faultline_core::coverage::adversarial_targets`].
///
/// # Errors
///
/// Rejects `k == 0`, a window bound `xmax <= 1` or non-finite, and
/// propagates enumeration failures.
pub fn exact_supremum(fleet: &Fleet, k: usize, xmax: f64) -> Result<ExactScan> {
    exact_supremum_geometry(fleet, k, xmax, Geometry::Line)
}

/// Geometry-parametric variant of [`exact_supremum`]: on
/// [`Geometry::HalfLine`] only the positive window `[1, xmax]` exists,
/// so the mirrored negative-side cover is skipped entirely and the
/// scan's critical-point count halves. [`Geometry::Line`] reproduces
/// [`exact_supremum`] bit for bit.
///
/// # Errors
///
/// As [`exact_supremum`].
pub fn exact_supremum_geometry(
    fleet: &Fleet,
    k: usize,
    xmax: f64,
    geometry: Geometry,
) -> Result<ExactScan> {
    if k == 0 {
        return Err(Error::domain("exact supremum needs a visit count k >= 1"));
    }
    if !(xmax > 1.0) || !xmax.is_finite() {
        return Err(Error::domain(format!("xmax must be finite and > 1, got {xmax}")));
    }
    let pos = first_visit_cover(fleet.trajectories(), 1.0, xmax)?;
    let neg = if geometry.has_negative_side() {
        scan_side_worst_case(&first_visit_cover(&mirrored(fleet.trajectories())?, 1.0, xmax)?, k)
    } else {
        // The half-line has no negative side: an empty accumulator
        // contributes no candidates, no uncovered intervals, and no
        // critical points to the merge.
        SideScan {
            best: None,
            uncovered: 0,
            uncovered_x: None,
            interval_sups: Vec::new(),
            critical_points: 0,
        }
    };
    Ok(merge_sides(scan_side_worst_case(&pos, k), neg))
}

/// An [`ExactScan`] paired with a certified enclosure of its
/// supremum, produced by [`exact_supremum_enclosed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnclosedScan {
    /// The plain critical-point scan, bit-identical to what
    /// [`exact_supremum`] returns for the same inputs.
    pub scan: ExactScan,
    /// Outward-rounded interval guaranteed to contain both the true
    /// (real-arithmetic) supremum and the `f64` scan value.
    pub enclosure: Interval,
}

/// The k-th order statistic of the per-affine visit-time enclosures
/// at `x`. Order statistics are monotone under pointwise ordering, so
/// the k-th smallest lower bound and the k-th smallest upper bound
/// bracket both the k-th smallest `f64` evaluation (what the scan
/// sorts) and the k-th smallest real value.
fn kth_time_enclosure(
    affines: &[Affine],
    k: usize,
    x: f64,
    los: &mut Vec<f64>,
    his: &mut Vec<f64>,
) -> Result<Interval> {
    los.clear();
    his.clear();
    for a in affines {
        let t = a.enclosure_at(x)?;
        los.push(t.lo());
        his.push(t.hi());
    }
    los.sort_by(f64::total_cmp);
    his.sort_by(f64::total_cmp);
    Interval::new(los[k - 1], his[k - 1])
}

/// Enclosure of `T_k(x) / x` at a point candidate, mirroring the scan
/// engine's operation order (sort times, then one division) so the
/// result contains the engine's `f64` evaluation at the same `x`.
fn kth_ratio_enclosure_at(
    affines: &[Affine],
    k: usize,
    x: f64,
    los: &mut Vec<f64>,
    his: &mut Vec<f64>,
) -> Result<Interval> {
    kth_time_enclosure(affines, k, x, los, his)?.div(Interval::point(x)?)
}

/// Enclosure of `{ T_k(x) / x : x in xs }` over a zero-free range —
/// the k-th order statistic of the per-affine ratio range enclosures.
fn kth_ratio_enclosure_over(
    affines: &[Affine],
    k: usize,
    xs: Interval,
    los: &mut Vec<f64>,
    his: &mut Vec<f64>,
) -> Result<Interval> {
    los.clear();
    his.clear();
    for a in affines {
        let g = a.ratio_enclosure_over(xs)?;
        los.push(g.lo());
        his.push(g.hi());
    }
    los.sort_by(f64::total_cmp);
    his.sort_by(f64::total_cmp);
    Interval::new(los[k - 1], his[k - 1])
}

/// One side's supremum enclosure: `lo` comes only from point
/// candidates (so it never exceeds the `f64` scan value), `hi`
/// additionally absorbs range enclosures over certified crossing
/// locations (so it covers the true supremum even when an `f64`
/// crossing candidate sits an ulp away from the real breakpoint).
fn scan_side_enclosure(cover: &WindowCover, k: usize) -> Result<(f64, f64)> {
    let uncovered = || Error::domain("cannot enclose an uncovered side: the supremum is unbounded");
    if cover.beyond().is_none() {
        return Err(uncovered());
    }
    let mut lo_acc = f64::NEG_INFINITY;
    let mut hi_acc = f64::NEG_INFINITY;
    let mut points: Vec<f64> = Vec::new();
    let mut los: Vec<f64> = Vec::new();
    let mut his: Vec<f64> = Vec::new();
    for (i, affines) in cover.intervals().iter().enumerate() {
        let (lo, hi) = cover.interval_bounds(i);
        if affines.len() < k {
            return Err(uncovered());
        }
        // Point candidates mirror scan_side_worst_case exactly.
        points.clear();
        points.push(lo);
        if !cover.is_beyond(i) {
            points.push(hi);
            push_crossings(affines, lo, hi, &mut points);
        }
        for &x in &points {
            let enc = kth_ratio_enclosure_at(affines, k, x, &mut los, &mut his)?;
            lo_acc = lo_acc.max(enc.lo());
            hi_acc = hi_acc.max(enc.hi());
        }
        if cover.is_beyond(i) {
            continue;
        }
        // The k-th order statistic is piecewise `s + i/x` with
        // breakpoints only at pairwise crossings, so the interval
        // supremum is attained at an endpoint or a true crossing.
        // Endpoints are exact; each true crossing lies inside its
        // certified enclosure, whose range enclosure widens `hi` only.
        for (ai, a) in affines.iter().enumerate() {
            for b in &affines[ai + 1..] {
                if a.crossing(b).is_none() {
                    continue;
                }
                let xs = match a.crossing_enclosure(b) {
                    Some(xs) if xs.is_positive() => xs,
                    // Degenerate slope-difference enclosure: the
                    // whole interval is always a sound fallback.
                    _ => Interval::new(lo, hi)?,
                };
                if !(xs.hi() > lo && xs.lo() < hi) {
                    continue;
                }
                let clipped = Interval::new(xs.lo().max(lo), xs.hi().min(hi))?;
                let range = kth_ratio_enclosure_over(affines, k, clipped, &mut los, &mut his)?;
                hi_acc = hi_acc.max(range.hi());
            }
        }
    }
    Ok((lo_acc, hi_acc))
}

/// The [`exact_supremum`] scan paired with an outward-rounded
/// interval `[lo, hi]` certified to contain the true supremum of
/// `K(x) = T_k(x) / |x|` over the window — and, because every lower
/// bound comes from a point candidate the scan itself evaluates, the
/// `f64` scan value satisfies `lo <= scan.ratio <= hi` as well.
///
/// # Errors
///
/// Beyond [`exact_supremum`]'s validation, errors when the scan is
/// uncovered: an unbounded supremum has no finite enclosure.
pub fn exact_supremum_enclosed(fleet: &Fleet, k: usize, xmax: f64) -> Result<EnclosedScan> {
    let scan = exact_supremum(fleet, k, xmax)?;
    if scan.uncovered > 0 || !scan.ratio.is_finite() {
        return Err(Error::domain("cannot enclose an uncovered supremum: the ratio is unbounded"));
    }
    let pos = first_visit_cover(fleet.trajectories(), 1.0, xmax)?;
    let neg = first_visit_cover(&mirrored(fleet.trajectories())?, 1.0, xmax)?;
    let (plo, phi) = scan_side_enclosure(&pos, k)?;
    let (nlo, nhi) = scan_side_enclosure(&neg, k)?;
    let enclosure = Interval::new(plo.max(nlo), phi.max(nhi))?;
    if !enclosure.contains(scan.ratio) {
        return Err(Error::numerical(format!(
            "supremum enclosure [{}, {}] lost the scan value {}",
            enclosure.lo(),
            enclosure.hi(),
            scan.ratio
        )));
    }
    Ok(EnclosedScan { scan, enclosure })
}

/// Evaluates the p-faulty expected cost at position `x` from the
/// interval's visit affines: in-horizon visits in time order carry
/// geometric detection mass, the rest truncates at the horizon
/// (exactly [`faultline_sim::expected_outcome`]). Returns `None` when
/// no visit lands within the horizon — the uncovered case.
fn expected_value_at(
    affines: &[Affine],
    x: f64,
    p: f64,
    horizon: f64,
    times: &mut Vec<f64>,
) -> Option<f64> {
    times.clear();
    times.extend(affines.iter().map(|a| a.eval(x)).filter(|&t| t <= horizon));
    if times.is_empty() {
        return None;
    }
    times.sort_by(f64::total_cmp);
    let mut surviving = 1.0;
    let mut expected = 0.0;
    for &t in times.iter() {
        expected += t * p * surviving;
        surviving *= 1.0 - p;
    }
    Some(expected + horizon * surviving)
}

/// Scans one side of the expected-cost supremum: candidates are the
/// interval endpoints, pairwise crossings, and horizon crossings.
fn scan_side_expected(cover: &WindowCover, p: f64, horizon: f64) -> SideScan {
    let mut side = SideScan {
        best: None,
        uncovered: 0,
        uncovered_x: None,
        interval_sups: Vec::with_capacity(cover.intervals().len()),
        critical_points: cover.cuts().len(),
    };
    let mark_uncovered = |side: &mut SideScan, x: f64| {
        side.uncovered += 1;
        if side.uncovered_x.is_none_or(|u| x < u) {
            side.uncovered_x = Some(x);
        }
    };
    if cover.beyond().is_none() {
        let hi = cover.cuts()[cover.cuts().len() - 1];
        mark_uncovered(&mut side, hi);
    }
    let mut candidates: Vec<f64> = Vec::new();
    let mut times: Vec<f64> = Vec::new();
    for (i, affines) in cover.intervals().iter().enumerate() {
        let (lo, hi) = cover.interval_bounds(i);
        if affines.is_empty() {
            mark_uncovered(&mut side, lo);
            continue;
        }
        candidates.clear();
        candidates.push(lo);
        if !cover.is_beyond(i) {
            candidates.push(hi);
            push_crossings(affines, lo, hi, &mut candidates);
            for a in affines {
                if let Some(x) = a.position_of_time(horizon) {
                    if x > lo && x < hi {
                        candidates.push(x);
                    }
                }
            }
        }
        match best_over_candidates(&candidates, |x| {
            expected_value_at(affines, x, p, horizon, &mut times)
        }) {
            Some(best) => {
                side.interval_sups.push(best.0);
                let replace = match side.best {
                    None => true,
                    Some((br, bx)) => best.0 > br || (best.0 == br && prefer_argmax(best.1, bx)),
                };
                if replace {
                    side.best = Some(best);
                }
            }
            None => mark_uncovered(&mut side, lo),
        }
    }
    side
}

/// The exact supremum of the p-faulty expected competitive ratio over
/// `[-xmax, -1] ∪ [1, xmax]`, with undetected mass truncated at the
/// fleet horizon — the grid-free counterpart of scanning
/// [`faultline_sim::expected_outcome`] over adversarial targets.
///
/// Unlike the worst-case scan, uncovered intervals leave the ratio
/// finite (the expectation truncates at the horizon); callers treat
/// `uncovered > 0` as an incomplete measurement and deepen the fleet.
///
/// # Errors
///
/// Rejects probabilities outside `[0, 1]` and invalid windows.
pub fn exact_expected_supremum(fleet: &Fleet, p: f64, xmax: f64) -> Result<ExactScan> {
    if !(0.0..=1.0).contains(&p) {
        return Err(Error::domain(format!("detection probability must be in [0, 1], got {p}")));
    }
    if !(xmax > 1.0) || !xmax.is_finite() {
        return Err(Error::domain(format!("xmax must be finite and > 1, got {xmax}")));
    }
    let horizon = fleet.horizon();
    let pos = all_visit_cover(fleet.trajectories(), 1.0, xmax)?;
    let neg = all_visit_cover(&mirrored(fleet.trajectories())?, 1.0, xmax)?;
    let merged =
        merge_sides(scan_side_expected(&pos, p, horizon), scan_side_expected(&neg, p, horizon));
    if merged.uncovered > 0 {
        // Expected cost truncates at the horizon, so even an
        // incomplete measurement reports the finite supremum over the
        // covered intervals (0 when nothing is covered), matching the
        // historical grid semantics.
        let pos_scan = scan_side_expected(&pos, p, horizon);
        let neg_scan = scan_side_expected(&neg, p, horizon);
        let (ratio, argmax) = match (pos_scan.best, neg_scan.best.map(|(r, x)| (r, -x))) {
            (Some((pr, px)), Some((nr, nx))) => {
                if nr > pr || (nr == pr && prefer_argmax(nx, px)) {
                    (nr, nx)
                } else {
                    (pr, px)
                }
            }
            (Some(p), None) => p,
            (None, Some(n)) => n,
            (None, None) => (0.0, 0.0),
        };
        return Ok(ExactScan { ratio, argmax, ..merged });
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_core::plan::{Direction, RayPlan, TrajectoryPlan};
    use faultline_core::{Algorithm, Params};

    fn paper_fleet(n: usize, f: usize, xmax: f64) -> Fleet {
        let params = Params::new(n, f).unwrap();
        let alg = Algorithm::design(params).unwrap();
        let horizon = alg.required_horizon(xmax * (1.0 + 1e-6)).unwrap();
        Fleet::from_plans(&alg.plans(), horizon).unwrap()
    }

    #[test]
    fn validates_inputs() {
        let fleet = paper_fleet(3, 1, 10.0);
        assert!(exact_supremum(&fleet, 0, 10.0).is_err());
        assert!(exact_supremum(&fleet, 2, 1.0).is_err());
        assert!(exact_supremum(&fleet, 2, f64::NAN).is_err());
        assert!(exact_expected_supremum(&fleet, 1.5, 10.0).is_err());
        assert!(exact_expected_supremum(&fleet, f64::NAN, 10.0).is_err());
        assert!(exact_expected_supremum(&fleet, 0.5, 0.5).is_err());
    }

    #[test]
    fn exact_supremum_attains_theorem_1_exactly() {
        // The proportional schedule equalizes every turning-point
        // right-hand limit at the Theorem 1 ratio, and the exact
        // engine evaluates those limits directly — agreement is at
        // float precision, far below any grid tolerance.
        for (n, f) in [(2usize, 1usize), (3, 1), (4, 2), (5, 2), (5, 3)] {
            let params = Params::new(n, f).unwrap();
            let analytic = faultline_core::ratio::cr_upper(params);
            let fleet = paper_fleet(n, f, 25.0);
            let scan = exact_supremum(&fleet, f + 1, 25.0).unwrap();
            assert_eq!(scan.uncovered, 0, "(n = {n}, f = {f})");
            assert!(
                (scan.ratio - analytic).abs() <= 1e-9 * analytic,
                "(n = {n}, f = {f}): exact {} vs Theorem 1 {analytic}",
                scan.ratio
            );
            assert!(scan.critical_points > 4);
            assert!(scan.pressure > 0.0 && scan.pressure <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn line_geometry_reproduces_exact_supremum_bitwise() {
        let fleet = paper_fleet(4, 2, 18.0);
        let two_sided = exact_supremum(&fleet, 3, 18.0).unwrap();
        let explicit = exact_supremum_geometry(&fleet, 3, 18.0, Geometry::Line).unwrap();
        assert_eq!(two_sided, explicit);
    }

    #[test]
    fn half_line_scan_is_one_sided_and_dominated_by_the_line() {
        let fleet = paper_fleet(3, 1, 15.0);
        let line = exact_supremum_geometry(&fleet, 2, 15.0, Geometry::Line).unwrap();
        let half = exact_supremum_geometry(&fleet, 2, 15.0, Geometry::HalfLine).unwrap();
        assert_eq!(half.uncovered, 0);
        assert!(half.argmax > 0.0, "half-line argmax stays on the positive side");
        // Dropping the negative side can only shrink the supremum and
        // exactly halves the enumerated critical points for a
        // symmetric-cut fleet.
        assert!(half.ratio <= line.ratio + 1e-12 * line.ratio);
        assert!(half.critical_points < line.critical_points);
        // The one-sided exact scan still dominates a dense one-sided grid.
        for i in 0..2000 {
            let x = 1.0 + 14.0 * i as f64 / 1999.0;
            if let Some(r) = fleet.ratio_at(x, 2).unwrap() {
                assert!(
                    half.ratio >= r - 1e-12 * r,
                    "half-line grid point {x} beats the exact supremum: {r} > {}",
                    half.ratio
                );
            }
        }
    }

    #[test]
    fn half_line_scan_handles_non_unit_speeds() {
        use faultline_core::{PiecewiseTrajectory, SpaceTime};
        // A speed-2 sweeper and a half-speed sweeper, both positive-only:
        // the fast robot visits x at t = x/2, the slow one at t = 2x, so
        // T_2(x)/x = 2 everywhere on the half-line.
        let fast = PiecewiseTrajectory::with_speed_limit(
            vec![SpaceTime::origin(), SpaceTime::new(40.0, 20.0)],
            2.0,
        )
        .unwrap();
        let slow = PiecewiseTrajectory::new(vec![SpaceTime::origin(), SpaceTime::new(20.0, 40.0)])
            .unwrap();
        let fleet = Fleet::new(vec![fast, slow]).unwrap();
        let half = exact_supremum_geometry(&fleet, 2, 10.0, Geometry::HalfLine).unwrap();
        assert_eq!(half.uncovered, 0);
        assert!((half.ratio - 2.0).abs() < 1e-12, "got {}", half.ratio);
        // The same fleet never covers the negative side: the full-line
        // scan reports it uncovered instead of silently skipping it.
        let line = exact_supremum_geometry(&fleet, 2, 10.0, Geometry::Line).unwrap();
        assert!(line.uncovered > 0);
        assert!(line.ratio.is_infinite());
    }

    #[test]
    fn exact_supremum_dominates_dense_grids() {
        let fleet = paper_fleet(3, 2, 20.0);
        let scan = exact_supremum(&fleet, 3, 20.0).unwrap();
        assert_eq!(scan.uncovered, 0);
        for i in 0..2000 {
            let x = 1.0 + 19.0 * i as f64 / 1999.0;
            for sx in [x, -x] {
                if let Some(r) = fleet.ratio_at(sx, 3).unwrap() {
                    assert!(
                        scan.ratio >= r - 1e-12 * r,
                        "grid point {sx} beats the exact supremum: {r} > {}",
                        scan.ratio
                    );
                }
            }
        }
    }

    #[test]
    fn two_ray_fleet_measures_exactly_one() {
        let plans: Vec<Box<dyn TrajectoryPlan>> =
            vec![Box::new(RayPlan::new(Direction::Right)), Box::new(RayPlan::new(Direction::Left))];
        let fleet = Fleet::from_plans(&plans, 100.0).unwrap();
        let scan = exact_supremum(&fleet, 1, 30.0).unwrap();
        assert_eq!(scan.ratio, 1.0);
        assert_eq!(scan.uncovered, 0);
        assert_eq!(scan.argmax, 1.0, "ties resolve to the positive point nearest the origin");
        // K = 1 on every interval: the plateau has full pressure.
        assert!((scan.pressure - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncovered_interval_is_reported_with_its_position() {
        // One ray going right: the negative side is never covered.
        let plans: Vec<Box<dyn TrajectoryPlan>> = vec![Box::new(RayPlan::new(Direction::Right))];
        let fleet = Fleet::from_plans(&plans, 100.0).unwrap();
        let scan = exact_supremum(&fleet, 1, 30.0).unwrap();
        assert!(scan.ratio.is_infinite());
        assert!(scan.uncovered > 0);
        assert_eq!(scan.argmax, -1.0, "the uncovered window edge nearest the origin");
        assert_eq!(scan.pressure, 1.0);
    }

    #[test]
    fn truncated_window_counts_the_unprobed_edge_as_uncovered() {
        // A fleet whose excursions stop exactly at the window edge
        // leaves the right-hand limit at xmax unprobed.
        let plans: Vec<Box<dyn TrajectoryPlan>> =
            vec![Box::new(RayPlan::new(Direction::Right)), Box::new(RayPlan::new(Direction::Left))];
        let fleet = Fleet::from_plans(&plans, 30.0).unwrap();
        let scan = exact_supremum(&fleet, 1, 30.0).unwrap();
        assert!(scan.ratio.is_infinite());
        assert_eq!(scan.uncovered, 2, "both window edges unprobed");
    }

    #[test]
    fn enclosed_supremum_brackets_the_scan_tightly_on_table_1_fleets() {
        for (n, f) in [(2usize, 1usize), (3, 1), (3, 2), (4, 2), (4, 3), (5, 2), (5, 3), (5, 4)] {
            let fleet = paper_fleet(n, f, 25.0);
            let plain = exact_supremum(&fleet, f + 1, 25.0).unwrap();
            let enclosed = exact_supremum_enclosed(&fleet, f + 1, 25.0).unwrap();
            assert_eq!(enclosed.scan, plain, "(n = {n}, f = {f}): scans must be bit-identical");
            assert!(
                enclosed.enclosure.contains(plain.ratio),
                "(n = {n}, f = {f}): [{}, {}] misses {}",
                enclosed.enclosure.lo(),
                enclosed.enclosure.hi(),
                plain.ratio
            );
            assert!(
                enclosed.enclosure.width() <= 1e-9 * plain.ratio,
                "(n = {n}, f = {f}): enclosure width {} is not tight",
                enclosed.enclosure.width()
            );
        }
    }

    #[test]
    fn enclosed_supremum_rejects_uncovered_scans() {
        let plans: Vec<Box<dyn TrajectoryPlan>> = vec![Box::new(RayPlan::new(Direction::Right))];
        let fleet = Fleet::from_plans(&plans, 100.0).unwrap();
        assert!(exact_supremum_enclosed(&fleet, 1, 30.0).is_err());
    }

    #[test]
    fn expected_supremum_at_p_one_matches_the_worst_case_with_f_zero() {
        let fleet = paper_fleet(3, 1, 15.0);
        let expected = exact_expected_supremum(&fleet, 1.0, 15.0).unwrap();
        let worst = exact_supremum(&fleet, 1, 15.0).unwrap();
        assert_eq!(expected.uncovered, 0);
        assert!(
            (expected.ratio - worst.ratio).abs() <= 1e-9 * worst.ratio,
            "p = 1 expectation {} vs first-visit worst case {}",
            expected.ratio,
            worst.ratio
        );
    }

    #[test]
    fn expected_supremum_is_monotone_in_p() {
        let fleet = paper_fleet(3, 1, 12.0);
        let mut prev = f64::INFINITY;
        for p in [0.2, 0.4, 0.6, 0.8, 1.0] {
            let scan = exact_expected_supremum(&fleet, p, 12.0).unwrap();
            assert_eq!(scan.uncovered, 0, "p = {p}");
            assert!(
                scan.ratio <= prev + 1e-9,
                "expected supremum must not increase in p: E({p}) = {} > {prev}",
                scan.ratio
            );
            prev = scan.ratio;
        }
    }
}
