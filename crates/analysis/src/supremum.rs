//! Empirical competitive-ratio measurement: supremum scans of `K(x)`
//! over adversarial target grids, via the analytic coverage path and,
//! independently, via the discrete-event simulator.

use faultline_core::coverage::{adversarial_targets, Fleet};
use faultline_core::{Params, Result};
use faultline_strategies::Strategy;
use serde::{Deserialize, Serialize};

/// The outcome of an empirical competitive-ratio measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredCr {
    /// The strategy's claimed analytic ratio, when it has one.
    pub analytic: Option<f64>,
    /// The measured supremum of `K(x)` over the target grid.
    pub empirical: f64,
    /// The target achieving the supremum.
    pub argmax: f64,
    /// Number of scanned targets not confirmed within the horizon
    /// (non-zero means the strategy's coverage is incomplete and
    /// `empirical` is infinite).
    pub uncovered: usize,
}

/// Relative offset used to probe the right-hand limits at turning
/// points, where the supremum of `K` lives (Lemma 3).
pub const TURNING_POINT_EPS: f64 = 1e-9;

/// Builds the adversarial target grid for a materialized fleet: all
/// turning points of all robots within `[1, xmax]`, their right-hand
/// limits, a log grid, and the mirror images.
///
/// # Errors
///
/// Propagates grid construction failures.
pub fn fleet_targets(fleet: &Fleet, xmax: f64, grid_points: usize) -> Result<Vec<f64>> {
    let turning: Vec<f64> =
        fleet.trajectories().iter().flat_map(|t| t.turning_points()).map(|p| p.x).collect();
    adversarial_targets(&turning, xmax, grid_points, TURNING_POINT_EPS)
}

/// Measures the competitive ratio of a strategy for `params` by
/// scanning `K(x) = T_(f+1)(x)/|x|` over the adversarial grid up to
/// `xmax`, using the analytic coverage path.
///
/// # Errors
///
/// Propagates plan generation, materialization and scan failures.
pub fn measure_strategy_cr(
    strategy: &dyn Strategy,
    params: Params,
    xmax: f64,
    grid_points: usize,
) -> Result<MeasuredCr> {
    let plans = strategy.plans(params)?;
    let horizon = strategy.horizon_hint(params, xmax * (1.0 + 2.0 * TURNING_POINT_EPS));
    let fleet = Fleet::from_plans(&plans, horizon)?;
    let targets = fleet_targets(&fleet, xmax, grid_points)?;
    let scan = fleet.supremum(&targets, params.required_visits())?;
    Ok(MeasuredCr {
        analytic: strategy.analytic_cr(params),
        empirical: scan.ratio,
        argmax: scan.argmax,
        uncovered: scan.uncovered,
    })
}

/// Measures the competitive ratio of a strategy through the
/// discrete-event simulator with the worst-case fault adversary — an
/// execution path entirely independent of [`measure_strategy_cr`].
///
/// # Errors
///
/// Propagates plan generation and simulation failures.
pub fn measure_strategy_cr_sim(
    strategy: &dyn Strategy,
    params: Params,
    xmax: f64,
    grid_points: usize,
) -> Result<MeasuredCr> {
    let plans = strategy.plans(params)?;
    let horizon = strategy.horizon_hint(params, xmax * (1.0 + 2.0 * TURNING_POINT_EPS));
    let fleet = Fleet::from_plans(&plans, horizon)?;
    let targets = fleet_targets(&fleet, xmax, grid_points)?;
    let result = faultline_sim::empirical_competitive_ratio(&plans, params.f(), &targets, horizon)?;
    Ok(MeasuredCr {
        analytic: strategy.analytic_cr(params),
        empirical: result.ratio,
        argmax: result.argmax,
        uncovered: result.undetected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_strategies::{HerdDoublingStrategy, PaperStrategy, PessimalSplitStrategy};

    #[test]
    fn paper_strategy_measures_at_its_analytic_cr() {
        for (n, f) in [(2usize, 1usize), (3, 1), (3, 2), (4, 2), (5, 2), (5, 3)] {
            let params = Params::new(n, f).unwrap();
            let m = measure_strategy_cr(&PaperStrategy::new(), params, 40.0, 120).unwrap();
            let analytic = m.analytic.unwrap();
            assert_eq!(m.uncovered, 0, "(n = {n}, f = {f})");
            assert!(
                m.empirical <= analytic + 1e-6,
                "(n = {n}, f = {f}): empirical {} above analytic {analytic}",
                m.empirical
            );
            // The supremum is essentially attained at turning-point
            // right-hand limits within the scanned window.
            assert!(
                m.empirical >= analytic - 1e-3,
                "(n = {n}, f = {f}): empirical {} far below analytic {analytic}",
                m.empirical
            );
        }
    }

    #[test]
    fn sim_path_agrees_with_coverage_path() {
        let params = Params::new(3, 1).unwrap();
        let a = measure_strategy_cr(&PaperStrategy::new(), params, 20.0, 60).unwrap();
        let b = measure_strategy_cr_sim(&PaperStrategy::new(), params, 20.0, 60).unwrap();
        assert!((a.empirical - b.empirical).abs() < 1e-9);
        assert_eq!(a.uncovered, b.uncovered);
    }

    #[test]
    fn herd_doubling_measures_below_nine() {
        let params = Params::new(3, 2).unwrap();
        let m = measure_strategy_cr(&HerdDoublingStrategy::new(), params, 600.0, 100).unwrap();
        assert_eq!(m.uncovered, 0);
        assert!(m.empirical <= 9.0 + 1e-9);
        assert!(m.empirical > 8.5, "worst case approaches 9, got {}", m.empirical);
    }

    #[test]
    fn pessimal_split_is_caught_uncovered() {
        let params = Params::new(3, 1).unwrap();
        let m = measure_strategy_cr(&PessimalSplitStrategy::new(), params, 10.0, 20).unwrap();
        assert!(m.empirical.is_infinite());
        assert!(m.uncovered > 0);
    }

    #[test]
    fn two_group_through_paper_strategy_measures_one() {
        let params = Params::new(6, 2).unwrap();
        let m = measure_strategy_cr(&PaperStrategy::new(), params, 30.0, 50).unwrap();
        assert!((m.empirical - 1.0).abs() < 1e-9);
    }
}
