//! Empirical competitive-ratio measurement: exact critical-point
//! supremum scans of `K(x)` through [`crate::exact`] on the hot
//! paths, the historical adversarial-grid scans retained as `_grid`
//! differential baselines, and an independent discrete-event
//! simulator path.

use crate::exact::{exact_expected_supremum, exact_supremum};
use faultline_core::coverage::{adversarial_targets, Fleet};
use faultline_core::{json_float, Error, FreeSchedule, Params, Result};
use faultline_strategies::{strategy_by_name, FixedBetaStrategy, Strategy};
use serde::{Deserialize, Serialize};

/// The outcome of an empirical competitive-ratio measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredCr {
    /// The strategy's claimed analytic ratio, when it has one.
    pub analytic: Option<f64>,
    /// The measured supremum of `K(x)` over the target grid.
    pub empirical: f64,
    /// The target achieving the supremum.
    pub argmax: f64,
    /// Number of scanned targets not confirmed within the horizon
    /// (non-zero means the strategy's coverage is incomplete and
    /// `empirical` is infinite).
    pub uncovered: usize,
}

// Manual serde impls: `empirical` is `f64::INFINITY` whenever coverage
// is incomplete, which a derived impl would write as lossy JSON `null`.
impl Serialize for MeasuredCr {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        use serde::ser::Error as _;
        serializer.serialize_value(serde::Value::Object(vec![
            ("analytic".to_owned(), serde::to_value(&self.analytic).map_err(S::Error::custom)?),
            ("empirical".to_owned(), json_float::encode_f64(self.empirical)),
            ("argmax".to_owned(), json_float::encode_f64(self.argmax)),
            ("uncovered".to_owned(), serde::Value::UInt(self.uncovered as u64)),
        ]))
    }
}

impl<'de> Deserialize<'de> for MeasuredCr {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        use serde::de::Error as _;
        let mut fields = json_float::object_fields(deserializer.take_value()?, "MeasuredCr")
            .map_err(D::Error::custom)?;
        let mut take = |name: &str| {
            json_float::take_field(&mut fields, name, "MeasuredCr").map_err(D::Error::custom)
        };
        let analytic = serde::from_value(take("analytic")?).map_err(D::Error::custom)?;
        let empirical_raw = take("empirical")?;
        let argmax_raw = take("argmax")?;
        let uncovered = serde::from_value(take("uncovered")?).map_err(D::Error::custom)?;
        Ok(MeasuredCr {
            analytic,
            empirical: json_float::decode_f64(&empirical_raw, "empirical")
                .map_err(D::Error::custom)?,
            argmax: json_float::decode_f64(&argmax_raw, "argmax").map_err(D::Error::custom)?,
            uncovered,
        })
    }
}

/// Relative offset used to probe the right-hand limits at turning
/// points, where the supremum of `K` lives (Lemma 3).
pub const TURNING_POINT_EPS: f64 = 1e-9;

/// Resolves a strategy specification — a registry name, or
/// `"fixed-beta"` together with a cone parameter — into a strategy
/// object. Shared by the scenario runner, the CLI and the query
/// service so every entry point accepts the same spellings.
///
/// # Errors
///
/// Rejects unknown names, a missing `beta` for `"fixed-beta"`, and a
/// `beta` supplied for any other strategy.
pub fn resolve_strategy(name: &str, beta: Option<f64>) -> Result<Box<dyn Strategy>> {
    if name == "fixed-beta" {
        let beta =
            beta.ok_or_else(|| Error::domain("strategy \"fixed-beta\" requires a \"beta\" field"))?;
        return Ok(Box::new(FixedBetaStrategy::new(beta)?));
    }
    if beta.is_some() {
        return Err(Error::domain("\"beta\" is only meaningful with strategy \"fixed-beta\""));
    }
    strategy_by_name(name).ok_or_else(|| Error::domain(format!("unknown strategy \"{name}\"")))
}

/// A typed supremum-scan request: which strategy to measure, for which
/// `(n, f)`, over which adversarial grid. This is the parameter set of
/// [`measure_strategy_cr`] in serializable form, consumed by both the
/// CLI and `POST /v1/supremum`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupremumQuery {
    /// Number of robots.
    pub n: usize,
    /// Fault tolerance.
    pub f: usize,
    /// Strategy name from the registry (default `"paper"`).
    #[serde(default = "default_strategy_name")]
    pub strategy: String,
    /// Cone parameter, only for `strategy = "fixed-beta"`.
    #[serde(default)]
    pub beta: Option<f64>,
    /// Scan targets up to `±xmax` (default 25).
    #[serde(default = "default_xmax")]
    pub xmax: f64,
    /// Log-grid points per side on top of the turning-point probes
    /// (default 64); only consulted when `grid` is set.
    #[serde(default = "default_grid_points")]
    pub grid_points: usize,
    /// Route through the historical adversarial-grid scan instead of
    /// the exact critical-point engine (default `false`). The grid is
    /// retained as a differential-test baseline; the exact path
    /// dominates every grid evaluation.
    #[serde(default)]
    pub grid: bool,
}

fn default_strategy_name() -> String {
    "paper".to_owned()
}

fn default_xmax() -> f64 {
    25.0
}

fn default_grid_points() -> usize {
    64
}

/// The result of a [`SupremumQuery`]: the fully resolved query echoed
/// back next to its measurement, so a cached report is self-describing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupremumReport {
    /// The query that produced this report.
    pub query: SupremumQuery,
    /// The measured supremum scan.
    pub measured: MeasuredCr,
}

impl SupremumQuery {
    /// Validates the query without running it.
    ///
    /// # Errors
    ///
    /// Rejects invalid `(n, f)`, unknown strategies, a missing or
    /// superfluous `beta`, a non-finite or sub-unit `xmax`, and grid
    /// sizes that are zero or beyond the service bound of 100 000
    /// points per side.
    pub fn validate(&self) -> Result<()> {
        Params::new(self.n, self.f)?;
        resolve_strategy(&self.strategy, self.beta)?;
        if !(self.xmax >= 1.0) || !self.xmax.is_finite() {
            return Err(Error::domain(format!("xmax must be finite and >= 1, got {}", self.xmax)));
        }
        if self.xmax > 1e9 {
            return Err(Error::domain(format!("xmax {} beyond the service bound 1e9", self.xmax)));
        }
        if self.grid_points == 0 || self.grid_points > 100_000 {
            return Err(Error::domain(format!(
                "grid_points must be in 1..=100000, got {}",
                self.grid_points
            )));
        }
        Ok(())
    }

    /// Runs the scan through [`measure_strategy_cr`], or through the
    /// grid baseline [`measure_strategy_cr_grid`] when `grid` is set.
    ///
    /// # Errors
    ///
    /// Propagates validation and measurement failures.
    pub fn run(&self) -> Result<SupremumReport> {
        self.validate()?;
        let params = Params::new(self.n, self.f)?;
        let strategy = resolve_strategy(&self.strategy, self.beta)?;
        let measured = if self.grid {
            measure_strategy_cr_grid(strategy.as_ref(), params, self.xmax, self.grid_points)?
        } else {
            measure_strategy_cr(strategy.as_ref(), params, self.xmax, self.grid_points)?
        };
        Ok(SupremumReport { query: self.clone(), measured })
    }
}

/// Builds the adversarial target grid for a materialized fleet: all
/// turning points of all robots within `[1, xmax]`, their right-hand
/// limits, a log grid, and the mirror images.
///
/// # Errors
///
/// Propagates grid construction failures.
pub fn fleet_targets(fleet: &Fleet, xmax: f64, grid_points: usize) -> Result<Vec<f64>> {
    let mut turning: Vec<f64> =
        fleet.trajectories().iter().flat_map(|t| t.turning_points()).map(|p| p.x).collect();
    // Robots sharing a turning position (herds, mirrored pairs) would
    // otherwise inject duplicate probes and a tie-dependent argmax.
    turning.sort_by(f64::total_cmp);
    turning.dedup();
    adversarial_targets(&turning, xmax, grid_points, TURNING_POINT_EPS)
}

/// Materializes a strategy's fleet together with the adversarial
/// target grid, guaranteeing the horizon covers every grid target.
///
/// The grid contains right-hand limits `m * (1 + eps)` for turning
/// points `m` up to `xmax`, so the horizon is requested for the
/// *actual* extreme target of the materialized grid (padded by another
/// `2 * eps`), not just for `xmax` itself; if that exceeds the probe
/// horizon the fleet is re-materialized. This closes the boundary gap
/// where the target at the largest turning point's right-hand limit
/// could fall outside the horizon a strategy sizes for `xmax` alone.
fn materialize_with_targets(
    strategy: &dyn Strategy,
    params: Params,
    xmax: f64,
    grid_points: usize,
) -> Result<(Fleet, Vec<f64>)> {
    let plans = strategy.plans(params)?;
    let probe = strategy.horizon_hint(params, xmax * (1.0 + 2.0 * TURNING_POINT_EPS));
    let fleet = Fleet::from_plans(&plans, probe)?;
    let targets = fleet_targets(&fleet, xmax, grid_points)?;
    let reach = targets.iter().fold(xmax, |acc, &t| acc.max(t.abs()));
    let needed = strategy.horizon_hint(params, reach * (1.0 + 2.0 * TURNING_POINT_EPS));
    let fleet = if needed > fleet.horizon() { Fleet::from_plans(&plans, needed)? } else { fleet };
    debug_assert!(
        reach * (1.0 + TURNING_POINT_EPS) <= reach * (1.0 + 2.0 * TURNING_POINT_EPS),
        "grid reach must stay inside the padded horizon request"
    );
    Ok((fleet, targets))
}

/// Measures the competitive ratio of a strategy for `params` as the
/// *exact* supremum of `K(x) = T_(f+1)(x)/|x|` over
/// `[-xmax, -1] ∪ [1, xmax]` plus the right-hand limits at `±xmax` —
/// a max over the critical points of [`crate::exact`], no grid.
///
/// `grid_points` is accepted for call-site compatibility with the
/// baseline [`measure_strategy_cr_grid`] but does not influence the
/// exact result.
///
/// # Errors
///
/// Propagates plan generation, materialization and scan failures.
pub fn measure_strategy_cr(
    strategy: &dyn Strategy,
    params: Params,
    xmax: f64,
    grid_points: usize,
) -> Result<MeasuredCr> {
    let _ = grid_points;
    // The window must be open past 1 so the right-hand limit at the
    // near edge is still probed when a caller passes xmax = 1 exactly.
    let window = if xmax > 1.0 { xmax } else { 1.0 + TURNING_POINT_EPS };
    let plans = strategy.plans(params)?;
    let probe = strategy.horizon_hint(params, window * (1.0 + 2.0 * TURNING_POINT_EPS));
    let fleet = Fleet::from_plans(&plans, probe)?;
    let scan = exact_supremum(&fleet, params.required_visits(), window)?;
    Ok(MeasuredCr {
        analytic: strategy.analytic_cr(params),
        empirical: scan.ratio,
        argmax: scan.argmax,
        uncovered: scan.uncovered,
    })
}

/// The historical adversarial-grid measurement behind
/// [`measure_strategy_cr`]: scans `K(x)` over the turning-point
/// probes, their right-hand limits and a log grid. Retained as the
/// differential-test baseline for the exact engine — the exact
/// supremum dominates every evaluation this scan performs.
///
/// # Errors
///
/// Propagates plan generation, materialization and scan failures.
pub fn measure_strategy_cr_grid(
    strategy: &dyn Strategy,
    params: Params,
    xmax: f64,
    grid_points: usize,
) -> Result<MeasuredCr> {
    let (fleet, targets) = materialize_with_targets(strategy, params, xmax, grid_points)?;
    let scan = fleet.supremum(&targets, params.required_visits())?;
    Ok(MeasuredCr {
        analytic: strategy.analytic_cr(params),
        empirical: scan.ratio,
        argmax: scan.argmax,
        uncovered: scan.uncovered,
    })
}

/// Measures the competitive ratio of a [`FreeSchedule`] — the inner
/// worst-case objective of the `faultline-opt` schedule optimizer —
/// as the exact supremum of `K(x) = T_(f+1)(x)/|x|` over
/// `[-xmax, -1] ∪ [1, xmax]` plus the right-hand limits at `±xmax`.
///
/// The fleet horizon starts from the schedule's own hint and doubles
/// until every inter-critical-point interval is confirmed (free
/// schedules can defer coverage arbitrarily late); after eight
/// doublings the scan is returned as-is, with `uncovered > 0` and an
/// infinite ratio — callers distinguish the bailout by the surfaced
/// `uncovered` count.
///
/// `grid_points` and `extra_targets` are accepted for call-site
/// compatibility with [`measure_free_schedule_cr_grid`]; the exact
/// supremum dominates every finite probe set inside the window, so
/// neither can sharpen it.
///
/// # Errors
///
/// Rejects `f + 1 > n` (the target can never be confirmed by `f + 1`
/// distinct robots) and `xmax <= 1`, and propagates materialization
/// and scan failures.
pub fn measure_free_schedule_cr(
    schedule: &FreeSchedule,
    f: usize,
    xmax: f64,
    grid_points: usize,
    extra_targets: &[f64],
) -> Result<MeasuredCr> {
    Ok(measure_free_schedule_profile(schedule, f, xmax, grid_points, extra_targets)?.measured)
}

/// The adversarial-grid baseline behind [`measure_free_schedule_cr`]:
/// scans the turning-point grid augmented with the mirrored
/// `extra_targets` (typically the Theorem 2 adversary placements).
///
/// # Errors
///
/// Same contract as [`measure_free_schedule_cr`].
pub fn measure_free_schedule_cr_grid(
    schedule: &FreeSchedule,
    f: usize,
    xmax: f64,
    grid_points: usize,
    extra_targets: &[f64],
) -> Result<MeasuredCr> {
    Ok(measure_free_schedule_profile_grid(schedule, f, xmax, grid_points, extra_targets)?.measured)
}

/// A [`measure_free_schedule_cr`] measurement augmented with the
/// *peak pressure*: the mass of inter-critical-point intervals whose
/// supremum sits essentially at the global supremum (a power-32
/// generalized mean of `interval supremum / supremum` — see
/// [`crate::exact::ExactScan::pressure`]). The paper's proportional
/// schedules equalize every peak, which makes the hard supremum a
/// plateau under any single-robot move; the optimizer uses the
/// pressure as a smooth tie-breaker so it can first drain non-binding
/// peaks and only then push the supremum itself down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreeScheduleProfile {
    /// The hard supremum scan.
    pub measured: MeasuredCr,
    /// Power-mean mass of near-supremum peaks, in `(0, 1]`; `1.0`
    /// when the measurement is incomplete or non-finite.
    pub pressure: f64,
}

/// Measures a free schedule's competitive ratio together with its
/// peak pressure (see [`FreeScheduleProfile`]) through the exact
/// critical-point engine.
///
/// # Errors
///
/// Same contract as [`measure_free_schedule_cr`].
pub fn measure_free_schedule_profile(
    schedule: &FreeSchedule,
    f: usize,
    xmax: f64,
    grid_points: usize,
    extra_targets: &[f64],
) -> Result<FreeScheduleProfile> {
    let _ = (grid_points, extra_targets);
    if f + 1 > schedule.n() {
        return Err(Error::invalid_params(
            schedule.n(),
            f,
            "a free schedule needs n >= f + 1 robots to confirm any target",
        ));
    }
    if !(xmax > 1.0) || !xmax.is_finite() {
        return Err(Error::domain(format!("xmax must be finite and > 1, got {xmax}")));
    }
    let plans = schedule.plans();
    let pad = 1.0 + 2.0 * TURNING_POINT_EPS;
    let mut horizon = schedule.horizon_hint(xmax * pad).max(4.0 * xmax);
    let mut attempt = 0usize;
    loop {
        let fleet = Fleet::from_plans(&plans, horizon)?;
        let scan = exact_supremum(&fleet, f + 1, xmax)?;
        if scan.uncovered == 0 || attempt >= 8 {
            let measured = MeasuredCr {
                analytic: None,
                empirical: scan.ratio,
                argmax: scan.argmax,
                uncovered: scan.uncovered,
            };
            return Ok(FreeScheduleProfile { measured, pressure: scan.pressure });
        }
        horizon *= 2.0;
        attempt += 1;
    }
}

/// The adversarial-grid baseline behind
/// [`measure_free_schedule_profile`], with the pressure taken as the
/// power-mean over scanned targets instead of critical-point
/// intervals.
///
/// # Errors
///
/// Same contract as [`measure_free_schedule_cr`].
pub fn measure_free_schedule_profile_grid(
    schedule: &FreeSchedule,
    f: usize,
    xmax: f64,
    grid_points: usize,
    extra_targets: &[f64],
) -> Result<FreeScheduleProfile> {
    if f + 1 > schedule.n() {
        return Err(Error::invalid_params(
            schedule.n(),
            f,
            "a free schedule needs n >= f + 1 robots to confirm any target",
        ));
    }
    if !(xmax > 1.0) || !xmax.is_finite() {
        return Err(Error::domain(format!("xmax must be finite and > 1, got {xmax}")));
    }
    let plans = schedule.plans();
    let pad = 1.0 + 2.0 * TURNING_POINT_EPS;
    let mut horizon = schedule.horizon_hint(xmax * pad).max(4.0 * xmax);
    let mut attempt = 0usize;
    loop {
        let fleet = Fleet::from_plans(&plans, horizon)?;
        let mut targets = fleet_targets(&fleet, xmax, grid_points)?;
        for &x in extra_targets {
            let m = x.abs();
            if m >= 1.0 && m <= xmax * pad {
                targets.push(m);
                targets.push(-m);
            }
        }
        targets.sort_by(f64::total_cmp);
        targets.dedup();
        let scan = fleet.supremum(&targets, f + 1)?;
        if scan.uncovered == 0 || attempt >= 8 {
            let measured = MeasuredCr {
                analytic: None,
                empirical: scan.ratio,
                argmax: scan.argmax,
                uncovered: scan.uncovered,
            };
            let pressure = if scan.uncovered == 0 && scan.ratio.is_finite() && scan.ratio > 0.0 {
                let mut mass = 0.0;
                for &x in &targets {
                    if let Some(r) = fleet.ratio_at(x, f + 1)? {
                        mass += (r / scan.ratio).powi(crate::exact::PRESSURE_EXPONENT);
                    }
                }
                mass / targets.len() as f64
            } else {
                1.0
            };
            return Ok(FreeScheduleProfile { measured, pressure });
        }
        horizon *= 2.0;
        attempt += 1;
    }
}

/// Measures the *expected* competitive ratio of a [`FreeSchedule`]
/// when every robot is p-faulty with the given per-visit detection
/// probability: the exact supremum over `[-xmax, -1] ∪ [1, xmax]` of
/// the closed-form expectation ([`faultline_sim::expected_outcome`]),
/// with undetected mass truncated at the measurement horizon.
///
/// A position is *uncovered* when no robot ever stands on it within
/// the horizon (its detection probability is exactly zero no matter
/// how large `p` is); the horizon doubles up to eight times until
/// every inter-critical-point interval is visited at least once,
/// mirroring [`measure_free_schedule_profile`]. `grid_points` is
/// accepted for call-site compatibility with
/// [`measure_free_schedule_expected_cr_grid`].
///
/// # Errors
///
/// Rejects `xmax <= 1` and out-of-range probabilities, and propagates
/// materialization failures.
pub fn measure_free_schedule_expected_cr(
    schedule: &FreeSchedule,
    detect_probability: f64,
    xmax: f64,
    grid_points: usize,
) -> Result<MeasuredCr> {
    let _ = grid_points;
    if !(xmax > 1.0) || !xmax.is_finite() {
        return Err(Error::domain(format!("xmax must be finite and > 1, got {xmax}")));
    }
    let plans = schedule.plans();
    let pad = 1.0 + 2.0 * TURNING_POINT_EPS;
    let mut horizon = schedule.horizon_hint(xmax * pad).max(4.0 * xmax);
    let mut attempt = 0usize;
    loop {
        let fleet = Fleet::from_plans(&plans, horizon)?;
        let scan = exact_expected_supremum(&fleet, detect_probability, xmax)?;
        if scan.uncovered == 0 || attempt >= 8 {
            return Ok(MeasuredCr {
                analytic: None,
                empirical: scan.ratio,
                argmax: scan.argmax,
                uncovered: scan.uncovered,
            });
        }
        horizon *= 2.0;
        attempt += 1;
    }
}

/// The adversarial-grid baseline behind
/// [`measure_free_schedule_expected_cr`]: scans the closed-form
/// expectation over the turning-point grid.
///
/// # Errors
///
/// Same contract as [`measure_free_schedule_expected_cr`].
pub fn measure_free_schedule_expected_cr_grid(
    schedule: &FreeSchedule,
    detect_probability: f64,
    xmax: f64,
    grid_points: usize,
) -> Result<MeasuredCr> {
    if !(xmax > 1.0) || !xmax.is_finite() {
        return Err(Error::domain(format!("xmax must be finite and > 1, got {xmax}")));
    }
    let plans = schedule.plans();
    let pad = 1.0 + 2.0 * TURNING_POINT_EPS;
    let mut horizon = schedule.horizon_hint(xmax * pad).max(4.0 * xmax);
    let mut attempt = 0usize;
    loop {
        let fleet = Fleet::from_plans(&plans, horizon)?;
        let targets = fleet_targets(&fleet, xmax, grid_points)?;
        let mut empirical = 0.0f64;
        let mut argmax = 0.0f64;
        let mut uncovered = 0usize;
        for &x in &targets {
            let e = faultline_sim::expected_outcome(
                fleet.trajectories(),
                faultline_sim::Target::new(x)?,
                detect_probability,
            )?;
            if e.visits == 0 {
                uncovered += 1;
                continue;
            }
            if e.expected_ratio > empirical {
                empirical = e.expected_ratio;
                argmax = x;
            }
        }
        if uncovered == 0 || attempt >= 8 {
            return Ok(MeasuredCr { analytic: None, empirical, argmax, uncovered });
        }
        horizon *= 2.0;
        attempt += 1;
    }
}

/// Measures the competitive ratio of a strategy through the
/// discrete-event simulator with the worst-case fault adversary — an
/// execution path entirely independent of [`measure_strategy_cr`].
///
/// # Errors
///
/// Propagates plan generation and simulation failures.
pub fn measure_strategy_cr_sim(
    strategy: &dyn Strategy,
    params: Params,
    xmax: f64,
    grid_points: usize,
) -> Result<MeasuredCr> {
    let plans = strategy.plans(params)?;
    let (fleet, targets) = materialize_with_targets(strategy, params, xmax, grid_points)?;
    let horizon = fleet.horizon();
    let result = faultline_sim::empirical_competitive_ratio(&plans, params.f(), &targets, horizon)?;
    Ok(MeasuredCr {
        analytic: strategy.analytic_cr(params),
        empirical: result.ratio,
        argmax: result.argmax,
        uncovered: result.undetected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_strategies::{HerdDoublingStrategy, PaperStrategy, PessimalSplitStrategy};

    #[test]
    fn paper_strategy_measures_at_its_analytic_cr() {
        for (n, f) in [(2usize, 1usize), (3, 1), (3, 2), (4, 2), (5, 2), (5, 3)] {
            let params = Params::new(n, f).unwrap();
            let m = measure_strategy_cr(&PaperStrategy::new(), params, 40.0, 120).unwrap();
            let analytic = m.analytic.unwrap();
            assert_eq!(m.uncovered, 0, "(n = {n}, f = {f})");
            // The supremum is attained exactly at turning-point
            // right-hand limits, which the exact engine evaluates
            // directly: agreement is at float precision, far below
            // the historical grid tolerance of 1e-3.
            assert!(
                (m.empirical - analytic).abs() <= 1e-6 * analytic,
                "(n = {n}, f = {f}): empirical {} vs analytic {analytic}",
                m.empirical
            );
        }
    }

    #[test]
    fn sim_path_agrees_with_coverage_path() {
        // The simulator scans the same discrete target grid as the
        // grid baseline, so the comparison runs grid-vs-sim; the
        // exact path can only exceed both, never fall below.
        let params = Params::new(3, 1).unwrap();
        let a = measure_strategy_cr_grid(&PaperStrategy::new(), params, 20.0, 60).unwrap();
        let b = measure_strategy_cr_sim(&PaperStrategy::new(), params, 20.0, 60).unwrap();
        assert!((a.empirical - b.empirical).abs() < 1e-9);
        assert_eq!(a.uncovered, b.uncovered);
        let exact = measure_strategy_cr(&PaperStrategy::new(), params, 20.0, 60).unwrap();
        assert!(exact.empirical >= a.empirical - 1e-12);
    }

    #[test]
    fn herd_doubling_measures_below_nine() {
        let params = Params::new(3, 2).unwrap();
        let m = measure_strategy_cr(&HerdDoublingStrategy::new(), params, 600.0, 100).unwrap();
        assert_eq!(m.uncovered, 0);
        assert!(m.empirical <= 9.0 + 1e-9);
        assert!(m.empirical > 8.5, "worst case approaches 9, got {}", m.empirical);
    }

    #[test]
    fn boundary_target_at_largest_turning_point_stays_covered() {
        // Pin xmax exactly at a turning position of the materialized
        // schedule, so the adversarial grid contains the right-hand
        // limit `xmax * (1 + eps)` — the target historically most at
        // risk of falling outside a horizon sized for `xmax` alone.
        let params = Params::new(3, 2).unwrap();
        let strategy = PaperStrategy::new();
        let plans = strategy.plans(params).unwrap();
        let probe = strategy.horizon_hint(params, 64.0);
        let fleet = Fleet::from_plans(&plans, probe).unwrap();
        let xmax = fleet
            .trajectories()
            .iter()
            .flat_map(faultline_core::PiecewiseTrajectory::turning_points)
            .map(|p| p.x.abs())
            .filter(|&m| m > 1.0 && m <= 50.0)
            .fold(0.0f64, f64::max);
        assert!(xmax > 1.0, "schedule must turn beyond 1 within the probe window");
        let m = measure_strategy_cr(&strategy, params, xmax, 16).unwrap();
        assert_eq!(
            m.uncovered, 0,
            "right-hand-limit target at the largest turning point ({xmax}) \
             fell outside the materialized horizon"
        );
        assert!(m.empirical.is_finite());
        let s = measure_strategy_cr_sim(&strategy, params, xmax, 16).unwrap();
        assert_eq!(s.uncovered, 0);
    }

    #[test]
    fn infinite_measurement_roundtrips_losslessly() {
        let params = Params::new(3, 1).unwrap();
        let m = measure_strategy_cr(&PessimalSplitStrategy::new(), params, 10.0, 20).unwrap();
        assert!(m.empirical.is_infinite());
        let json = serde_json::to_string_pretty(&m).unwrap();
        assert!(json.contains("\"inf\""), "non-finite ratio must use the sentinel: {json}");
        let back: MeasuredCr = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn supremum_query_runs_and_roundtrips() {
        let query: SupremumQuery =
            serde_json::from_str(r#"{"n": 3, "f": 1, "xmax": 20.0, "grid_points": 32}"#).unwrap();
        assert_eq!(query.strategy, "paper");
        let report = query.run().unwrap();
        assert_eq!(report.measured.uncovered, 0);
        assert!((report.measured.empirical - 5.2331).abs() < 1e-2);
        let json = serde_json::to_string(&report).unwrap();
        let back: SupremumReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn supremum_query_validates_inputs() {
        let base = SupremumQuery {
            n: 3,
            f: 1,
            strategy: "paper".into(),
            beta: None,
            xmax: 25.0,
            grid_points: 64,
            grid: false,
        };
        assert!(base.validate().is_ok());
        assert!(SupremumQuery { n: 1, f: 3, ..base.clone() }.validate().is_err());
        assert!(SupremumQuery { strategy: "nope".into(), ..base.clone() }.validate().is_err());
        assert!(SupremumQuery { beta: Some(2.0), ..base.clone() }.validate().is_err());
        assert!(SupremumQuery { strategy: "fixed-beta".into(), ..base.clone() }
            .validate()
            .is_err());
        assert!(SupremumQuery { xmax: 0.5, ..base.clone() }.validate().is_err());
        assert!(SupremumQuery { xmax: f64::NAN, ..base.clone() }.validate().is_err());
        assert!(SupremumQuery { grid_points: 0, ..base.clone() }.validate().is_err());
        assert!(SupremumQuery { grid_points: 1_000_000, ..base }.validate().is_err());
    }

    #[test]
    fn resolve_strategy_matches_scenario_rules() {
        assert!(resolve_strategy("paper", None).is_ok());
        assert!(resolve_strategy("fixed-beta", Some(2.5)).is_ok());
        assert!(resolve_strategy("fixed-beta", None).is_err());
        assert!(resolve_strategy("paper", Some(2.5)).is_err());
        assert!(resolve_strategy("no-such", None).is_err());
    }

    #[test]
    fn pessimal_split_is_caught_uncovered() {
        let params = Params::new(3, 1).unwrap();
        let m = measure_strategy_cr(&PessimalSplitStrategy::new(), params, 10.0, 20).unwrap();
        assert!(m.empirical.is_infinite());
        assert!(m.uncovered > 0);
    }

    #[test]
    fn lowered_proportional_free_schedule_measures_at_theorem1() {
        use faultline_core::{ratio, ProportionalSchedule};
        for (n, f) in [(3usize, 1usize), (5, 3), (4, 2)] {
            let params = Params::new(n, f).unwrap();
            let beta = ratio::optimal_beta(params).unwrap();
            let schedule = ProportionalSchedule::new(n, beta).unwrap();
            let free = FreeSchedule::from_proportional(&schedule, 10).unwrap();
            let analytic = ratio::cr_upper(params);
            let m = measure_free_schedule_cr(&free, f, 25.0, 64, &[]).unwrap();
            assert_eq!(m.uncovered, 0, "(n = {n}, f = {f})");
            assert!(
                m.empirical <= analytic + 1e-9,
                "(n = {n}, f = {f}): free-schedule measurement {} above Theorem 1 {analytic}",
                m.empirical
            );
            // Exact evaluation lands on the equalized peaks, so the
            // historical 1e-2 grid slack tightens to float precision.
            assert!(
                m.empirical >= analytic - 1e-6 * analytic,
                "(n = {n}, f = {f}): {}",
                m.empirical
            );
        }
    }

    #[test]
    fn free_schedule_measurement_validates_inputs() {
        use faultline_core::FreeRobot;
        let one_robot =
            FreeSchedule::new(vec![FreeRobot::new(1.0, vec![1.0, 2.0], 1.0).unwrap()]).unwrap();
        assert!(measure_free_schedule_cr(&one_robot, 1, 10.0, 16, &[]).is_err(), "f + 1 > n");
        assert!(measure_free_schedule_cr(&one_robot, 0, 1.0, 16, &[]).is_err(), "xmax <= 1");
        assert!(measure_free_schedule_cr(&one_robot, 0, f64::NAN, 16, &[]).is_err());
        // A single doubling robot with f = 0 is the classic cow path:
        // measured CR <= 9 within any window.
        let m = measure_free_schedule_cr(&one_robot, 0, 30.0, 32, &[]).unwrap();
        assert_eq!(m.uncovered, 0);
        assert!(m.empirical <= 9.0 + 1e-9, "doubling measures {}", m.empirical);
    }

    #[test]
    fn deferred_coverage_doubles_the_horizon_until_confirmed() {
        use faultline_core::FreeRobot;
        // The second robot dawdles: it reaches its first turn only at
        // t = 5000, far beyond the initial horizon hint for xmax = 10,
        // so confirmation (f + 1 = 2 distinct visits) of every target
        // needs the measurement loop to deepen the fleet. The measured
        // ratio is finite but dominated by the dawdler.
        let schedule = FreeSchedule::new(vec![
            FreeRobot::new(1.0, vec![1.0, 2.0], 1.0).unwrap(),
            FreeRobot::new(-1.0, vec![1.0, 2.0], 5000.0).unwrap(),
        ])
        .unwrap();
        let m = measure_free_schedule_cr(&schedule, 1, 10.0, 16, &[]).unwrap();
        assert_eq!(m.uncovered, 0, "horizon doubling must eventually confirm the window");
        assert!(m.empirical.is_finite());
        assert!(m.empirical > 500.0, "the dawdler dominates: {}", m.empirical);
    }

    #[test]
    fn extra_targets_sharpen_the_measurement() {
        use faultline_core::lower_bound;
        use faultline_core::{ratio, ProportionalSchedule};
        // Theorem 2 adversary points land inside the grid and the
        // measurement stays consistent with the lower bound.
        let params = Params::new(3, 1).unwrap();
        let beta = ratio::optimal_beta(params).unwrap();
        let schedule = ProportionalSchedule::new(3, beta).unwrap();
        let free = FreeSchedule::from_proportional(&schedule, 8).unwrap();
        let alpha = lower_bound::alpha(3).unwrap();
        let adversary = lower_bound::adversary_points(3, alpha).unwrap();
        let m = measure_free_schedule_cr(&free, 1, 25.0, 48, &adversary).unwrap();
        assert_eq!(m.uncovered, 0);
        assert!(m.empirical >= alpha, "measured {} below alpha(3) = {alpha}", m.empirical);
    }

    #[test]
    fn bailed_out_measurement_surfaces_uncovered_through_json() {
        use faultline_core::FreeRobot;
        // A turn ratio this close to 1 expands the zigzag so slowly
        // that the robot cannot clear the window within the horizon
        // hint's turn cap or eight doublings, so the measurement
        // bails out: the infinite ratio alone would be
        // indistinguishable from a genuine divergence, and callers
        // rely on the surfaced `uncovered` count instead.
        let schedule =
            FreeSchedule::new(vec![FreeRobot::new(1.0, vec![1.0, 1.0 + 1e-7], 1.0).unwrap()])
                .unwrap();
        let m = measure_free_schedule_cr(&schedule, 0, 2.0, 16, &[]).unwrap();
        assert!(m.empirical.is_infinite());
        assert!(m.uncovered > 0, "bailout must report the uncovered intervals");
        let json = serde_json::to_string(&m).unwrap();
        assert!(
            json.contains(&format!("\"uncovered\": {}", m.uncovered))
                || json.contains(&format!("\"uncovered\":{}", m.uncovered)),
            "uncovered must survive the JSON boundary: {json}"
        );
        let back: MeasuredCr = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back, "the bailout measurement must roundtrip losslessly");
    }

    #[test]
    fn proportional_seed_reports_full_pressure() {
        use faultline_core::{ratio, ProportionalSchedule};
        // The proportional seed equalizes every ladder peak at the
        // Theorem 1 ratio, so the power-32 mean over critical-point
        // intervals must sit essentially at 1 — dilution comes only
        // from the handful of truncation cuts and the window edge.
        let params = Params::new(3, 1).unwrap();
        let beta = ratio::optimal_beta(params).unwrap();
        let schedule = ProportionalSchedule::new(3, beta).unwrap();
        let free = FreeSchedule::from_proportional(&schedule, 10).unwrap();
        let profile = measure_free_schedule_profile(&free, 1, 25.0, 64, &[]).unwrap();
        assert_eq!(profile.measured.uncovered, 0);
        assert!(
            profile.pressure > 0.5 && profile.pressure <= 1.0 + 1e-12,
            "equalized-peak plateau must keep the pressure near 1, got {}",
            profile.pressure
        );
    }

    #[test]
    fn two_group_through_paper_strategy_measures_one() {
        let params = Params::new(6, 2).unwrap();
        let m = measure_strategy_cr(&PaperStrategy::new(), params, 30.0, 50).unwrap();
        assert!((m.empirical - 1.0).abs() < 1e-9);
    }

    #[test]
    fn expected_cr_validates_inputs_and_is_monotone_in_p() {
        use faultline_core::FreeRobot;
        let schedule =
            FreeSchedule::new(vec![FreeRobot::new(1.0, vec![1.0, 2.0], 1.0).unwrap()]).unwrap();
        assert!(measure_free_schedule_expected_cr(&schedule, 0.5, 1.0, 16).is_err(), "xmax <= 1");
        assert!(measure_free_schedule_expected_cr(&schedule, f64::NAN, 10.0, 16).is_err());
        assert!(measure_free_schedule_expected_cr(&schedule, 1.5, 10.0, 16).is_err());
        let mut prev = f64::INFINITY;
        for p in [0.2, 0.4, 0.6, 0.8, 1.0] {
            let m = measure_free_schedule_expected_cr(&schedule, p, 20.0, 24).unwrap();
            assert_eq!(m.uncovered, 0, "p = {p} leaves uncovered targets");
            assert!(m.analytic.is_none());
            assert!(
                m.empirical <= prev + 1e-12,
                "expected CR must be monotone non-increasing in p: E({p}) = {} > {prev}",
                m.empirical
            );
            prev = m.empirical;
        }
    }

    #[test]
    fn expected_cr_at_certain_detection_matches_the_reliable_measurement() {
        use faultline_core::FreeRobot;
        // With p = 1 every visit detects, so the expectation collapses
        // to the first-visit time — exactly the f = 0 worst case.
        let schedule = FreeSchedule::new(vec![
            FreeRobot::new(1.0, vec![1.0, 2.0], 1.0).unwrap(),
            FreeRobot::new(-1.0, vec![1.0, 2.0], 1.0).unwrap(),
        ])
        .unwrap();
        let expected = measure_free_schedule_expected_cr(&schedule, 1.0, 15.0, 32).unwrap();
        let reliable = measure_free_schedule_cr(&schedule, 0, 15.0, 32, &[]).unwrap();
        assert_eq!(expected.uncovered, 0);
        assert!(
            (expected.empirical - reliable.empirical).abs() <= 1e-9,
            "p = 1 expectation {} vs reliable measurement {}",
            expected.empirical,
            reliable.empirical
        );
    }
}
