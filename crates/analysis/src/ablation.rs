//! Ablation experiments for the design choices called out in DESIGN.md:
//!
//! * **A1 — beta sweep**: the closed-form optimum `beta* = (4f+4)/n - 1`
//!   really minimizes the competitive ratio; sweeping `beta` shows the
//!   bowl shape and its minimum.
//! * **A3 — fault misestimation**: running `A(n, f_design)` against a
//!   true fault count `f_true != f_design` quantifies the price of a
//!   wrong fault budget (A2, the expansion-factor identities, is a pure
//!   closed-form check covered by unit tests in `faultline-core`).

use faultline_core::{numeric, ratio, Params, ProportionalSchedule, Result};
use faultline_strategies::FixedBetaStrategy;
use serde::{Deserialize, Serialize};

use crate::supremum::measure_strategy_cr;

/// One sample of the beta-ablation sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BetaSample {
    /// The swept cone parameter.
    pub beta: f64,
    /// Closed-form competitive ratio at this `beta` (Lemma 5).
    pub analytic: f64,
    /// Empirically measured supremum, when requested.
    pub measured: Option<f64>,
}

/// Result of the beta ablation for one `(n, f)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BetaAblation {
    /// The parameters swept.
    pub n: usize,
    /// Fault budget.
    pub f: usize,
    /// The closed-form optimum `beta*`.
    pub beta_star: f64,
    /// Competitive ratio at `beta*`.
    pub cr_star: f64,
    /// Sweep samples, in increasing `beta`.
    pub samples: Vec<BetaSample>,
}

/// Sweeps `beta` over a geometric neighbourhood of `beta*` and records
/// the analytic (and optionally measured) competitive ratio.
///
/// # Errors
///
/// Propagates parameter and measurement failures.
pub fn beta_sweep(params: Params, points: usize, measure: bool) -> Result<BetaAblation> {
    let beta_star = ratio::optimal_beta(params)?;
    let lo = 1.0 + 0.25 * (beta_star - 1.0);
    let hi = 1.0 + 4.0 * (beta_star - 1.0);
    let betas: Vec<f64> =
        numeric::logspace(lo - 1.0, hi - 1.0, points)?.into_iter().map(|d| 1.0 + d).collect();
    // Measurement cost rises with beta (larger cones → longer horizons),
    // so the sweep runs on the work-stealing engine rather than in
    // contiguous per-core chunks.
    let samples: Vec<BetaSample> = crate::parallel::par_map(&betas, |&beta| {
        let analytic = ratio::cr_of_beta(params, beta)?;
        let measured = if measure {
            let strategy = FixedBetaStrategy::new(beta)?;
            Some(measure_strategy_cr(&strategy, params, 30.0, 48)?.empirical)
        } else {
            None
        };
        Ok(BetaSample { beta, analytic, measured })
    })
    .into_iter()
    .collect::<Result<_>>()?;
    Ok(BetaAblation {
        n: params.n(),
        f: params.f(),
        beta_star,
        cr_star: ratio::cr_of_beta(params, beta_star)?,
        samples,
    })
}

/// One sample of the fault-misestimation ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MisestimationSample {
    /// The fault budget the schedule was designed for.
    pub f_design: usize,
    /// The true number of faults injected by the adversary.
    pub f_true: usize,
    /// The resulting worst-case competitive ratio
    /// (`r^(f_true + 1) (beta - 1) + 1` with `beta` optimized for
    /// `f_design`).
    pub cr: f64,
    /// The ratio achievable had the designer known `f_true`.
    pub cr_oracle: f64,
}

/// For a fixed `n`, designs `A(n, f_design)` and evaluates it against
/// every true fault count `f_true < n` that keeps the pair in the
/// proportional regime, quantifying the penalty of a wrong fault
/// budget.
///
/// # Errors
///
/// Propagates parameter validation failures.
pub fn fault_misestimation(n: usize, f_design: usize) -> Result<Vec<MisestimationSample>> {
    let design_params = Params::new(n, f_design)?;
    let beta = ratio::optimal_beta(design_params)?;
    let schedule = ProportionalSchedule::new(n, beta)?;
    let mut out = Vec::new();
    for f_true in 0..n {
        let true_params = Params::new(n, f_true)?;
        let cr = schedule.competitive_ratio(f_true);
        let cr_oracle = ratio::cr_upper(true_params);
        out.push(MisestimationSample { f_design, f_true, cr, cr_oracle });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_sweep_bowl_has_minimum_at_beta_star() {
        let params = Params::new(3, 1).unwrap();
        let ablation = beta_sweep(params, 31, false).unwrap();
        assert!((ablation.beta_star - 5.0 / 3.0).abs() < 1e-12);
        // Every swept sample is at least the optimum.
        for s in &ablation.samples {
            assert!(s.analytic >= ablation.cr_star - 1e-12, "beta = {} beat beta*", s.beta);
        }
        // The sweep brackets the optimum.
        assert!(ablation.samples.first().unwrap().beta < ablation.beta_star);
        assert!(ablation.samples.last().unwrap().beta > ablation.beta_star);
    }

    #[test]
    fn beta_sweep_measured_matches_analytic() {
        let params = Params::new(3, 1).unwrap();
        let ablation = beta_sweep(params, 7, true).unwrap();
        for s in &ablation.samples {
            let m = s.measured.unwrap();
            assert!(
                (m - s.analytic).abs() < 5e-3,
                "beta = {}: measured {m} vs analytic {}",
                s.beta,
                s.analytic
            );
        }
    }

    #[test]
    fn misestimation_is_monotone_in_true_faults() {
        let samples = fault_misestimation(5, 2).unwrap();
        assert_eq!(samples.len(), 5);
        for w in samples.windows(2) {
            assert!(w[1].cr > w[0].cr, "more faults must cost more");
        }
        // Exact design point: the schedule meets its oracle bound.
        let at_design = &samples[2];
        assert!((at_design.cr - at_design.cr_oracle).abs() < 1e-9);
    }

    #[test]
    fn underestimating_faults_is_worse_than_oracle() {
        // Design for f = 2 but face f = 3 (n = 5): the mis-designed
        // schedule must be strictly worse than A(5, 3).
        let samples = fault_misestimation(5, 2).unwrap();
        let s = samples.iter().find(|s| s.f_true == 3).unwrap();
        assert!(s.cr > s.cr_oracle + 1e-6, "cr = {}, oracle = {}", s.cr, s.cr_oracle);
    }

    #[test]
    fn misestimation_requires_proportional_design() {
        // (5, 1) is in the two-group regime: no beta* exists.
        assert!(fault_misestimation(5, 1).is_err());
    }

    #[test]
    fn overestimating_faults_also_costs() {
        // Design for f = 3 but face f = 2 (n = 5): still worse than the
        // oracle A(5, 2) (the schedule is too conservative).
        let samples = fault_misestimation(5, 3).unwrap();
        let s = samples.iter().find(|s| s.f_true == 2).unwrap();
        assert!(s.cr > s.cr_oracle + 1e-6);
    }
}
