//! Parallel parameter sweeps built on the work-stealing engine.
//!
//! The implementation moved to [`faultline_core::parallel`] so the
//! simulator's fault-space explorer can share it; this module re-exports
//! it under the historical path.

pub use faultline_core::parallel::{par_map, par_map_chunked, par_map_with, ParallelConfig};
