//! Parallel parameter sweeps built on crossbeam scoped threads.
//!
//! The implementation moved to [`faultline_core::parallel`] so the
//! simulator's fault-space explorer can share it; this module re-exports
//! it under the historical path.

pub use faultline_core::parallel::par_map;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexport_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = par_map(&items, |&x| x * 2);
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
    }
}
