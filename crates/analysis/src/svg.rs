//! Minimal SVG rendering for space–time diagrams (Figures 1–4, 6–7).
//!
//! The canvas maps problem coordinates (position on the line, time)
//! into SVG pixels with position on the horizontal axis and time
//! growing **upwards**, matching the paper's figures.

use faultline_core::{Error, Result};

/// An SVG canvas over a rectangular region of the space–time plane.
#[derive(Debug, Clone)]
pub struct SvgCanvas {
    width: f64,
    height: f64,
    x_range: (f64, f64),
    y_range: (f64, f64),
    elements: Vec<String>,
}

impl SvgCanvas {
    /// Creates a canvas of `width x height` pixels covering
    /// `x_range x y_range` in problem coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] for empty ranges or non-positive pixel
    /// dimensions.
    pub fn new(width: f64, height: f64, x_range: (f64, f64), y_range: (f64, f64)) -> Result<Self> {
        if !(width > 0.0 && height > 0.0) {
            return Err(Error::domain("canvas dimensions must be positive"));
        }
        if !(x_range.0 < x_range.1 && y_range.0 < y_range.1) {
            return Err(Error::domain("canvas ranges must be non-empty"));
        }
        Ok(SvgCanvas { width, height, x_range, y_range, elements: Vec::new() })
    }

    fn map(&self, x: f64, y: f64) -> (f64, f64) {
        let px = (x - self.x_range.0) / (self.x_range.1 - self.x_range.0) * self.width;
        // SVG y grows downwards; flip so time grows upwards.
        let py =
            self.height - (y - self.y_range.0) / (self.y_range.1 - self.y_range.0) * self.height;
        (px, py)
    }

    /// Draws a polyline through problem-space points.
    pub fn polyline(&mut self, points: &[(f64, f64)], color: &str, stroke_width: f64) {
        if points.len() < 2 {
            return;
        }
        let coords: Vec<String> = points
            .iter()
            .map(|&(x, y)| {
                let (px, py) = self.map(x, y);
                format!("{px:.2},{py:.2}")
            })
            .collect();
        self.elements.push(format!(
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"{stroke_width}\"/>",
            coords.join(" ")
        ));
    }

    /// Draws a filled circle at a problem-space point.
    pub fn circle(&mut self, x: f64, y: f64, radius_px: f64, color: &str) {
        let (px, py) = self.map(x, y);
        self.elements.push(format!(
            "<circle cx=\"{px:.2}\" cy=\"{py:.2}\" r=\"{radius_px}\" fill=\"{color}\"/>"
        ));
    }

    /// Places a text label at a problem-space point.
    pub fn text(&mut self, x: f64, y: f64, content: &str) {
        let (px, py) = self.map(x, y);
        let escaped = content.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;");
        self.elements.push(format!(
            "<text x=\"{px:.2}\" y=\"{py:.2}\" font-size=\"12\" font-family=\"monospace\">{escaped}</text>"
        ));
    }

    /// Draws the coordinate axes (the line `t = 0` and the axis `x = 0`)
    /// when they fall inside the canvas.
    pub fn axes(&mut self) {
        if self.y_range.0 <= 0.0 && self.y_range.1 >= 0.0 {
            self.polyline(&[(self.x_range.0, 0.0), (self.x_range.1, 0.0)], "#888888", 1.0);
        }
        if self.x_range.0 <= 0.0 && self.x_range.1 >= 0.0 {
            self.polyline(&[(0.0, self.y_range.0), (0.0, self.y_range.1)], "#888888", 1.0);
        }
    }

    /// Serializes the canvas as a standalone SVG document.
    #[must_use]
    pub fn into_svg(self) -> String {
        let mut out = format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" \
             viewBox=\"0 0 {} {}\">\n",
            self.width, self.height, self.width, self.height
        );
        out.push_str("<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n");
        for el in self.elements {
            out.push_str(&el);
            out.push('\n');
        }
        out.push_str("</svg>\n");
        out
    }
}

/// A small palette for multi-robot diagrams.
pub const PALETTE: &[&str] =
    &["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#e377c2"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canvas_validation() {
        assert!(SvgCanvas::new(0.0, 100.0, (0.0, 1.0), (0.0, 1.0)).is_err());
        assert!(SvgCanvas::new(100.0, 100.0, (1.0, 1.0), (0.0, 1.0)).is_err());
        assert!(SvgCanvas::new(100.0, 100.0, (0.0, 1.0), (2.0, 1.0)).is_err());
    }

    #[test]
    fn svg_document_structure() {
        let mut c = SvgCanvas::new(200.0, 100.0, (-5.0, 5.0), (0.0, 10.0)).unwrap();
        c.axes();
        c.polyline(&[(0.0, 0.0), (1.0, 1.0), (-2.0, 4.0)], "#1f77b4", 1.5);
        c.circle(1.0, 1.0, 3.0, "#d62728");
        c.text(0.0, 9.0, "cone C<beta>");
        let svg = c.into_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("<polyline"));
        assert!(svg.contains("<circle"));
        assert!(svg.contains("&lt;beta&gt;"), "text must be escaped");
    }

    #[test]
    fn time_axis_points_up() {
        let mut c = SvgCanvas::new(100.0, 100.0, (0.0, 1.0), (0.0, 1.0)).unwrap();
        c.circle(0.0, 1.0, 1.0, "#000000"); // top of time range
        let svg = c.into_svg();
        // Mapped y must be 0 (top of the image).
        assert!(svg.contains("cy=\"0.00\""), "{svg}");
    }

    #[test]
    fn short_polylines_are_ignored() {
        let mut c = SvgCanvas::new(100.0, 100.0, (0.0, 1.0), (0.0, 1.0)).unwrap();
        c.polyline(&[(0.5, 0.5)], "#000000", 1.0);
        assert!(!c.into_svg().contains("polyline"));
    }
}
