//! Terminal space–time timeline: robot positions rastered over time,
//! the textual analogue of the paper's trajectory figures.
//!
//! Each output row is one sampled instant (time increases downward);
//! each column is a position bin. Robots are drawn as their index digit
//! (`0`–`9`, then `a`–`z`), collisions as `*`, the target column as `|`.

use faultline_core::{numeric, Error, PiecewiseTrajectory, Result};

/// Renders the timeline of a fleet.
///
/// # Errors
///
/// Returns [`Error::InvalidParameters`] for an empty fleet and
/// [`Error::Domain`] for degenerate dimensions.
pub fn render_timeline(
    trajectories: &[PiecewiseTrajectory],
    target: Option<f64>,
    rows: usize,
    width: usize,
) -> Result<String> {
    if trajectories.is_empty() {
        return Err(Error::invalid_params(0, 0, "timeline needs at least one robot"));
    }
    if rows < 2 || width < 16 {
        return Err(Error::domain("timeline needs at least 2 rows and width 16"));
    }
    let horizon =
        trajectories.iter().map(PiecewiseTrajectory::horizon).fold(f64::INFINITY, f64::min);
    let mut reach =
        trajectories.iter().map(PiecewiseTrajectory::max_excursion).fold(1.0f64, f64::max);
    if let Some(x) = target {
        reach = reach.max(x.abs());
    }
    reach *= 1.02;

    let column_of = |x: f64| -> usize {
        (((x + reach) / (2.0 * reach)) * (width - 1) as f64).round() as usize % width
    };
    let glyph_of = |robot: usize| -> char {
        match robot {
            0..=9 => (b'0' + robot as u8) as char,
            10..=35 => (b'a' + (robot - 10) as u8) as char,
            _ => '+',
        }
    };

    let mut out = String::new();
    out.push_str(&format!(
        "position {:+.3} .. {:+.3}; robots drawn as digits, collisions as '*'\n",
        -reach, reach
    ));
    for t in numeric::linspace(0.0, horizon, rows) {
        let mut line = vec![' '; width];
        if let Some(x) = target {
            line[column_of(x)] = '|';
        }
        line[column_of(0.0)] = if line[column_of(0.0)] == '|' { '|' } else { '.' };
        for (i, traj) in trajectories.iter().enumerate() {
            if let Some(x) = traj.position_at(t) {
                let col = column_of(x);
                line[col] = if line[col] == ' ' || line[col] == '.' || line[col] == '|' {
                    glyph_of(i)
                } else {
                    '*'
                };
            }
        }
        out.push_str(&format!("t = {t:9.3} "));
        out.extend(line);
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_core::{Algorithm, Params, TrajectoryBuilder};

    #[test]
    fn validates_inputs() {
        assert!(render_timeline(&[], None, 10, 40).is_err());
        let t = TrajectoryBuilder::from_origin().sweep_to(2.0).finish().unwrap();
        assert!(render_timeline(std::slice::from_ref(&t), None, 1, 40).is_err());
        assert!(render_timeline(&[t], None, 10, 4).is_err());
    }

    #[test]
    fn renders_the_paper_algorithm() {
        let alg = Algorithm::design(Params::new(3, 1).unwrap()).unwrap();
        let trajs: Vec<_> = alg.plans().iter().map(|p| p.materialize(40.0).unwrap()).collect();
        let text = render_timeline(&trajs, Some(-4.0), 20, 60).unwrap();
        assert_eq!(text.lines().count(), 21); // header + 20 rows
        assert!(text.contains('0') && text.contains('1') && text.contains('2'));
        assert!(text.contains('|'), "target column marked");
        // All robots start together: the first raster row shows a
        // collision at the origin.
        let first_row = text.lines().nth(1).unwrap();
        assert!(first_row.contains('*'), "{first_row}");
    }

    #[test]
    fn robot_glyphs_extend_past_ten() {
        let alg = Algorithm::design(Params::new(11, 5).unwrap()).unwrap();
        let trajs: Vec<_> = alg.plans().iter().map(|p| p.materialize(30.0).unwrap()).collect();
        let text = render_timeline(&trajs, None, 12, 72).unwrap();
        assert!(text.contains('a'), "robot 10 drawn as 'a'");
    }
}
