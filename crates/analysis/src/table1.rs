//! Regeneration of **Table 1**: upper and lower bounds on the
//! competitive ratio and the expansion factor of `A(n, f)` for the
//! paper's specific `(n, f)` pairs, with an empirical cross-check.

use faultline_core::{lower_bound, ratio, Params, Regime, Result};
use faultline_strategies::PaperStrategy;
use serde::{Deserialize, Serialize};

use crate::ascii::render_table;
use crate::supremum::measure_strategy_cr;

/// One regenerated row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Number of robots.
    pub n: usize,
    /// Fault tolerance.
    pub f: usize,
    /// Competitive ratio of `A(n, f)` (Theorem 1) — the paper's
    /// "comp. ratio of A(n, f)" column.
    pub cr_upper: f64,
    /// Lower bound on the competitive ratio of any algorithm — the
    /// paper's "lower bound on comp. ratio" column.
    pub lower_bound: f64,
    /// Expansion factor of `A(n, f)` (absent in the two-group regime,
    /// matching the paper's blank cells).
    pub expansion_factor: Option<f64>,
    /// Empirically measured supremum of `K(x)` (not part of the paper's
    /// table; our cross-check).
    pub cr_measured: Option<f64>,
}

/// The `(n, f)` pairs of Table 1, in the paper's row order.
pub const TABLE1_PAIRS: &[(usize, usize)] = &[
    (2, 1),
    (3, 1),
    (3, 2),
    (4, 1),
    (4, 2),
    (4, 3),
    (5, 1),
    (5, 2),
    (5, 3),
    (5, 4),
    (11, 5),
    (41, 20),
];

/// The values printed in the paper, for comparison:
/// `(n, f, cr, lower bound, expansion factor)`.
///
/// Note: for `(41, 20)` the paper prints a lower bound of 3.12; the
/// defining equation's root is 3.1357 (the paper's print-out is rounded
/// conservatively). We reproduce the equation root.
pub const TABLE1_PAPER: &[(usize, usize, f64, f64, Option<f64>)] = &[
    (2, 1, 9.0, 9.0, Some(2.0)),
    (3, 1, 5.24, 3.76, Some(4.0)),
    (3, 2, 9.0, 9.0, Some(2.0)),
    (4, 1, 1.0, 1.0, None),
    (4, 2, 6.2, 3.649, Some(3.0)),
    (4, 3, 9.0, 9.0, Some(2.0)),
    (5, 1, 1.0, 1.0, None),
    (5, 2, 4.43, 3.57, Some(6.0)),
    (5, 3, 6.76, 3.57, Some(2.67)),
    (5, 4, 9.0, 9.0, Some(2.0)),
    (11, 5, 3.73, 3.345, Some(12.0)),
    (41, 20, 3.24, 3.12, Some(42.0)),
];

/// Grid resolution of the empirical supremum scan used by
/// [`regenerate_row`] and [`regenerate`]. Finer grids tighten the
/// measured supremum at proportionally higher cost.
pub const DEFAULT_MEASURE_GRID: usize = 64;

/// Regenerates one row analytically; with `measure = true` also runs
/// the empirical supremum scan (slower for large `n`) at the default
/// grid resolution.
///
/// # Errors
///
/// Propagates parameter validation and measurement failures.
pub fn regenerate_row(n: usize, f: usize, measure: bool) -> Result<Table1Row> {
    regenerate_row_with_grid(n, f, measure, DEFAULT_MEASURE_GRID)
}

/// [`regenerate_row`] with an explicit scan grid resolution.
///
/// # Errors
///
/// Propagates parameter validation and measurement failures.
pub fn regenerate_row_with_grid(
    n: usize,
    f: usize,
    measure: bool,
    grid_points: usize,
) -> Result<Table1Row> {
    let params = Params::new(n, f)?;
    let cr_upper = ratio::cr_upper(params);
    let lb = lower_bound::lower_bound(params)?;
    let expansion = match params.regime() {
        Regime::Proportional => Some(ratio::expansion_factor(params)?),
        Regime::TwoGroup => None,
    };
    let cr_measured = if measure {
        // xmax spans a few proportionality-ratio periods so the scan
        // sees several turning-point discontinuities.
        let xmax = match params.regime() {
            Regime::Proportional => {
                (ratio::proportionality_ratio(params)?.powi(n.min(8) as i32) * 4.0).max(16.0)
            }
            Regime::TwoGroup => 16.0,
        };
        Some(measure_strategy_cr(&PaperStrategy::new(), params, xmax, grid_points)?.empirical)
    } else {
        None
    };
    Ok(Table1Row { n, f, cr_upper, lower_bound: lb, expansion_factor: expansion, cr_measured })
}

/// Regenerates the full Table 1.
///
/// Rows are measured in parallel on the work-stealing engine: the
/// per-row cost grows with `n` (the `(41, 20)` scan dominates), so
/// contiguous chunking would strand the expensive tail rows on one
/// worker.
///
/// # Errors
///
/// Propagates row failures.
pub fn regenerate(measure: bool) -> Result<Vec<Table1Row>> {
    regenerate_with_grid(measure, DEFAULT_MEASURE_GRID)
}

/// [`regenerate`] with an explicit scan grid resolution.
///
/// # Errors
///
/// Propagates row failures.
pub fn regenerate_with_grid(measure: bool, grid_points: usize) -> Result<Vec<Table1Row>> {
    crate::parallel::par_map(TABLE1_PAIRS, |&(n, f)| {
        regenerate_row_with_grid(n, f, measure, grid_points)
    })
    .into_iter()
    .collect()
}

/// Serializes regenerated rows as the canonical CSV artifact
/// (`out/table1.csv`), shared by the `repro` harness and the query
/// service's CSV export.
#[must_use]
pub fn to_csv(rows: &[Table1Row]) -> String {
    let mut csv = String::from("n,f,cr_upper,lower_bound,expansion_factor,cr_measured\n");
    for r in rows {
        csv.push_str(&format!(
            "{},{},{},{},{},{}\n",
            r.n,
            r.f,
            r.cr_upper,
            r.lower_bound,
            r.expansion_factor.map_or(String::new(), |v| v.to_string()),
            r.cr_measured.map_or(String::new(), |v| v.to_string()),
        ));
    }
    csv
}

/// Renders regenerated rows next to the paper's printed values.
#[must_use]
pub fn render(rows: &[Table1Row]) -> String {
    let fmt_opt = |v: Option<f64>| v.map_or_else(|| "-".to_owned(), |x| format!("{x:.3}"));
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let paper = TABLE1_PAPER.iter().find(|p| p.0 == r.n && p.1 == r.f);
            vec![
                r.n.to_string(),
                r.f.to_string(),
                format!("{:.3}", r.cr_upper),
                paper.map_or_else(|| "-".into(), |p| format!("{:.3}", p.2)),
                format!("{:.3}", r.lower_bound),
                paper.map_or_else(|| "-".into(), |p| format!("{:.3}", p.3)),
                fmt_opt(r.expansion_factor),
                paper.map_or_else(|| "-".into(), |p| fmt_opt(p.4)),
                fmt_opt(r.cr_measured),
            ]
        })
        .collect();
    render_table(
        &[
            "n",
            "f",
            "CR A(n,f)",
            "paper",
            "lower bnd",
            "paper",
            "expansion",
            "paper",
            "CR measured",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_rows_match_paper_to_print_precision() {
        let rows = regenerate(false).unwrap();
        assert_eq!(rows.len(), TABLE1_PAPER.len());
        for (row, paper) in rows.iter().zip(TABLE1_PAPER) {
            assert_eq!((row.n, row.f), (paper.0, paper.1));
            // The paper prints two decimals and rounds loosely (it
            // shows 5.24 where the text computes ~5.233).
            assert!(
                (row.cr_upper - paper.2).abs() < 1e-2,
                "(n={}, f={}): CR {} vs paper {}",
                row.n,
                row.f,
                row.cr_upper,
                paper.2
            );
            // Lower bound: the paper's 3.12 for (41,20) is a conservative
            // print-out; everything else matches tightly.
            let lb_tol = if row.n == 41 { 0.02 } else { 5e-3 };
            assert!(
                (row.lower_bound - paper.3).abs() < lb_tol,
                "(n={}, f={}): LB {} vs paper {}",
                row.n,
                row.f,
                row.lower_bound,
                paper.3
            );
            match (row.expansion_factor, paper.4) {
                (Some(got), Some(want)) => {
                    assert!((got - want).abs() < 5e-3, "(n={}, f={})", row.n, row.f);
                }
                (None, None) => {}
                other => panic!("expansion mismatch for (n={}, f={}): {other:?}", row.n, row.f),
            }
        }
    }

    #[test]
    fn measured_rows_confirm_upper_bounds() {
        // Empirical scan for the small rows (skip n = 41 in unit tests
        // for speed; the bench covers it).
        for &(n, f) in &[(2usize, 1usize), (3, 1), (4, 2), (5, 3)] {
            let row = regenerate_row(n, f, true).unwrap();
            let measured = row.cr_measured.unwrap();
            assert!(
                measured <= row.cr_upper + 1e-6,
                "(n={n}, f={f}): measured {measured} above bound {}",
                row.cr_upper
            );
            assert!(
                measured >= row.cr_upper - 5e-3,
                "(n={n}, f={f}): measured {measured} unexpectedly far below bound {}",
                row.cr_upper
            );
        }
    }

    #[test]
    fn two_group_rows_have_no_expansion_factor() {
        let row = regenerate_row(4, 1, true).unwrap();
        assert!(row.expansion_factor.is_none());
        assert_eq!(row.cr_upper, 1.0);
        assert!((row.cr_measured.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn csv_has_header_and_all_rows() {
        let rows = regenerate(false).unwrap();
        let csv = to_csv(&rows);
        assert!(csv.starts_with("n,f,cr_upper,lower_bound,expansion_factor,cr_measured\n"));
        assert_eq!(csv.lines().count(), 1 + rows.len());
        // Two-group rows leave the expansion column empty.
        assert!(csv.lines().any(|l| l.starts_with("4,1,1,")));
    }

    #[test]
    fn render_includes_all_rows() {
        let rows = regenerate(false).unwrap();
        let text = render(&rows);
        assert!(text.contains("41"));
        assert!(text.contains("CR A(n,f)"));
        // One header, one separator, twelve rows.
        assert_eq!(text.lines().count(), 2 + rows.len());
    }
}
