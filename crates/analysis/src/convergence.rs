//! Asymptotic-rate validation: how fast the finite formulas approach
//! their limits.
//!
//! The paper states three asymptotics; this module measures the actual
//! convergence rates, providing the quantitative backing for the
//! `O(·)` claims:
//!
//! * Corollary 1: `CR(A(2f+1, f)) - 3 <= 4 ln n / n + O(1)/n`;
//! * Corollary 2: `alpha(n) - 3 >= 2 ln n/n - 2 ln ln n/n` (asymptotic);
//! * Section 3: `CR(A(n, f)) -> (4/a)^(2/a)(4/a-2)^(1-2/a) + 1` for
//!   fixed `a = n/f`.

use faultline_core::{lower_bound, ratio, Params, Result};
use serde::{Deserialize, Serialize};

/// One row of a convergence study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceSample {
    /// The size parameter (robots `n`, or faults `f` for the fixed-`a`
    /// study).
    pub size: usize,
    /// The finite value.
    pub value: f64,
    /// The claimed limit.
    pub limit: f64,
    /// `(value - limit) * size / ln(size)` — bounded iff the gap is
    /// `Theta(ln size / size)`.
    pub normalized_gap: f64,
}

/// Corollary 1 study: the gap `CR(A(2f+1, f)) - 3`, normalized by
/// `ln n / n`.
///
/// Corollary 1 upper-bounds the gap by `4 ln n / n` (plus `O(1)/n`).
/// The measurement shows the bound is loose by a factor of two: the
/// normalized gap decreases towards **2** — exactly the leading
/// constant of the Corollary 2 *lower* bound. `A(2f+1, f)` is thus
/// asymptotically optimal including the constant of the second-order
/// term, a sharper statement than the paper makes explicit.
///
/// # Errors
///
/// Propagates formula failures.
pub fn corollary1_rate(sizes: &[usize]) -> Result<Vec<ConvergenceSample>> {
    sizes
        .iter()
        .map(|&n| {
            let value = ratio::cr_odd_n(n)?;
            let nf = n as f64;
            Ok(ConvergenceSample {
                size: n,
                value,
                limit: 3.0,
                normalized_gap: (value - 3.0) * nf / nf.ln(),
            })
        })
        .collect()
}

/// Corollary 2 study: the gap `alpha(n) - 3`, normalized by `ln n / n`;
/// the paper's lower bound says the normalized gap is at least
/// `2 - 2 ln ln n / ln n`, i.e. it approaches 2 from below.
///
/// # Errors
///
/// Propagates solver failures.
pub fn corollary2_rate(sizes: &[usize]) -> Result<Vec<ConvergenceSample>> {
    sizes
        .iter()
        .map(|&n| {
            let value = lower_bound::alpha(n)?;
            let nf = n as f64;
            Ok(ConvergenceSample {
                size: n,
                value,
                limit: 3.0,
                normalized_gap: (value - 3.0) * nf / nf.ln(),
            })
        })
        .collect()
}

/// Fixed-proportion study: `CR(A(n, f))` with `n = round(a f)` against
/// the asymptotic curve, for growing `f`. The normalized gap uses
/// `f / ln f` scaling and should stay bounded.
///
/// # Errors
///
/// Propagates formula failures and invalid proportions.
pub fn fixed_proportion_rate(a: f64, sizes: &[usize]) -> Result<Vec<ConvergenceSample>> {
    let limit = ratio::asymptotic_cr(a)?;
    sizes
        .iter()
        .map(|&f| {
            let n = (a * f as f64).round() as usize;
            let params = Params::new(n, f)?;
            let value = ratio::cr_upper(params);
            let ff = f as f64;
            Ok(ConvergenceSample {
                size: f,
                value,
                limit,
                normalized_gap: (value - limit) * ff / ff.ln().max(1.0),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIZES: &[usize] = &[11, 101, 1001, 10_001, 100_001];

    #[test]
    fn corollary1_normalized_gap_approaches_two() {
        let samples = corollary1_rate(SIZES).unwrap();
        // The true leading constant is 2 (the paper's Corollary 1 proves
        // the conservative envelope 4): the normalized gap decreases
        // towards 2 and stays within the corollary's envelope.
        let last = samples.last().unwrap();
        assert!(
            (2.0..=2.3).contains(&last.normalized_gap),
            "normalized gap at n = {} is {}",
            last.size,
            last.normalized_gap
        );
        for w in samples.windows(2) {
            assert!(w[1].normalized_gap < w[0].normalized_gap + 1e-9);
        }
        for s in &samples {
            assert!(s.normalized_gap <= 4.0, "Corollary 1 envelope violated at n = {}", s.size);
        }
    }

    #[test]
    fn upper_and_lower_normalized_gaps_share_the_constant() {
        // The sharpened statement: CR - 3 and alpha - 3 both normalize
        // to the constant 2, so A(2f+1, f) is optimal to second order.
        let n = 100_001;
        let upper = corollary1_rate(&[n]).unwrap()[0].normalized_gap;
        let lower = corollary2_rate(&[n]).unwrap()[0].normalized_gap;
        assert!(upper >= lower, "upper {upper} below lower {lower}");
        assert!(upper - lower < 0.7, "gap between constants: {upper} vs {lower}");
    }

    #[test]
    fn corollary2_normalized_gap_approaches_two() {
        let samples = corollary2_rate(SIZES).unwrap();
        let last = samples.last().unwrap();
        assert!(
            (1.5..=2.2).contains(&last.normalized_gap),
            "normalized gap at n = {} is {}",
            last.size,
            last.normalized_gap
        );
        // And the lower-bound envelope 2 - 2 ln ln n / ln n is respected.
        for s in &samples {
            let nf = s.size as f64;
            let envelope = 2.0 - 2.0 * nf.ln().ln() / nf.ln();
            assert!(
                s.normalized_gap >= envelope - 1e-9,
                "n = {}: {} < envelope {envelope}",
                s.size,
                s.normalized_gap
            );
        }
    }

    #[test]
    fn fixed_proportion_converges() {
        let samples = fixed_proportion_rate(1.5, &[10, 100, 1000, 10_000]).unwrap();
        let mut prev_gap = f64::INFINITY;
        for s in &samples {
            let gap = (s.value - s.limit).abs();
            assert!(gap < prev_gap, "f = {}", s.size);
            prev_gap = gap;
        }
        assert!(prev_gap < 1e-3);
        assert!(fixed_proportion_rate(2.5, &[10]).is_err());
    }
}
