//! Extension experiment: **does randomization help against faults?**
//!
//! For a single reliable robot, randomizing the sweep phase drops the
//! competitive ratio from 9 to ≈ 4.591 (Kao–Reif–Tate). This experiment
//! measures the *expected* ratio of the randomized sweep in the faulty
//! parallel setting: for each target `x`, average `T_(f+1)(x)/|x|` over
//! many independent coin draws (with the fault adversary choosing the
//! worst `f` robots per draw), then take the supremum over targets.
//!
//! Expected shape: at `(1, 0)` the measurement recovers ≈ 4.59; for
//! `f >= 1` randomization still beats the corresponding deterministic
//! doubling-style baselines, while the paper's (deterministic,
//! worst-case-optimal) schedule remains the benchmark in the worst
//! case — randomized guarantees are only in expectation.

use faultline_core::coverage::Fleet;
use faultline_core::{numeric, Params, Result};
use faultline_strategies::randomized::RandomizedStrategy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Result of an expected-ratio measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExpectedCr {
    /// The supremum over targets of the per-target expected ratio.
    pub expected_cr: f64,
    /// The target achieving it.
    pub argmax: f64,
    /// Number of (draw, target) pairs where `f + 1` robots did not
    /// reach the target within the horizon (counted as failures; any
    /// non-zero value makes the estimate unreliable).
    pub uncovered: usize,
    /// Coin draws per target.
    pub draws: usize,
}

/// Estimates `sup_x E[T_(f+1)(x)] / |x|` for a randomized strategy by
/// Monte-Carlo over the strategy's coins, with the fault adversary
/// re-optimized per draw.
///
/// # Errors
///
/// Propagates sampling and evaluation failures; rejects `draws == 0`.
pub fn expected_cr(
    strategy: &dyn RandomizedStrategy,
    params: Params,
    xmax: f64,
    grid: usize,
    draws: usize,
    seed: u64,
) -> Result<ExpectedCr> {
    if draws == 0 {
        return Err(faultline_core::Error::domain("expected CR needs at least one draw"));
    }
    let mut targets: Vec<f64> = Vec::new();
    for x in numeric::logspace(1.0, xmax, grid)? {
        targets.push(x);
        targets.push(-x);
    }
    let horizon = strategy.horizon_hint(params, xmax);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sums = vec![0.0f64; targets.len()];
    let mut uncovered = 0usize;
    for _ in 0..draws {
        let plans = strategy.sample_plans(params, &mut rng)?;
        let fleet = Fleet::from_plans(&plans, horizon)?;
        for (i, &x) in targets.iter().enumerate() {
            match fleet.visit_time(x, params.required_visits()) {
                Some(t) => sums[i] += t / x.abs(),
                None => uncovered += 1,
            }
        }
    }
    let mut best = (0.0f64, targets[0]);
    for (i, &x) in targets.iter().enumerate() {
        let mean = sums[i] / draws as f64;
        if mean > best.0 {
            best = (mean, x);
        }
    }
    Ok(ExpectedCr { expected_cr: best.0, argmax: best.1, uncovered, draws })
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_strategies::RandomizedSweepStrategy;

    #[test]
    fn recovers_kao_value_for_single_robot() {
        // (n, f) = (1, 0): the classic randomized cow-path. The
        // phase-averaged ratio must approach 1 + (1 + r*)/ln r* ≈ 4.591
        // (finite-draw and finite-grid effects keep it merely close).
        let strategy = RandomizedSweepStrategy::kao_optimal();
        let params = Params::new(1, 0).unwrap();
        let result = expected_cr(&strategy, params, 40.0, 24, 400, 7).unwrap();
        assert_eq!(result.uncovered, 0);
        let kao = strategy.single_robot_expected_cr();
        assert!(
            (result.expected_cr - kao).abs() < 0.35,
            "measured {} vs Kao {kao}",
            result.expected_cr
        );
        // Far below the deterministic 9.
        assert!(result.expected_cr < 5.5);
    }

    #[test]
    fn randomization_beats_deterministic_doubling_at_f1() {
        // (3, 1): expected ratio of the randomized sweep vs the
        // deterministic herd-doubling worst case (9) — randomization
        // should clearly win in expectation.
        let strategy = RandomizedSweepStrategy::kao_optimal();
        let params = Params::new(3, 1).unwrap();
        let result = expected_cr(&strategy, params, 30.0, 16, 150, 11).unwrap();
        assert_eq!(result.uncovered, 0);
        assert!(
            result.expected_cr < 9.0,
            "randomized expected CR {} should beat doubling's 9",
            result.expected_cr
        );
    }

    #[test]
    fn rejects_zero_draws() {
        let strategy = RandomizedSweepStrategy::kao_optimal();
        let params = Params::new(1, 0).unwrap();
        assert!(expected_cr(&strategy, params, 10.0, 8, 0, 1).is_err());
    }

    #[test]
    fn estimate_is_reproducible() {
        let strategy = RandomizedSweepStrategy::new(3.0).unwrap();
        let params = Params::new(2, 1).unwrap();
        let a = expected_cr(&strategy, params, 10.0, 8, 50, 5).unwrap();
        let b = expected_cr(&strategy, params, 10.0, 8, 50, 5).unwrap();
        assert_eq!(a, b);
    }
}
