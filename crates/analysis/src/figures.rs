//! Data generators for the paper's illustrative figures (1–4, 6, 7).
//!
//! Each generator returns a [`FigureData`]: named `(x, t)` series that
//! can be rendered as a terminal chart, exported as CSV, or drawn as an
//! SVG space–time diagram with time growing upwards, matching the
//! paper's conventions.

use faultline_core::coverage::Fleet;
use faultline_core::{
    lower_bound, numeric, Algorithm, Cone, Params, Result, TrajectoryBuilder, TrajectoryPlan,
    ZigZagPlan,
};

use crate::ascii::Series;
use crate::svg::{SvgCanvas, PALETTE};

/// A figure as raw data: a set of named series in the space–time plane
/// (`x` = position on the line, `y` = time).
#[derive(Debug, Clone, PartialEq)]
pub struct FigureData {
    /// Machine name, e.g. `"fig2"`.
    pub name: &'static str,
    /// Human-readable title.
    pub title: String,
    /// The series to plot.
    pub series: Vec<Series>,
}

impl FigureData {
    /// Renders the figure as an SVG space–time diagram.
    ///
    /// # Errors
    ///
    /// Propagates canvas construction failures (degenerate data).
    pub fn to_svg(&self, width: f64, height: f64) -> Result<String> {
        let pts: Vec<(f64, f64)> = self.series.iter().flat_map(|s| s.points.clone()).collect();
        let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
        for (x, y) in &pts {
            xmin = xmin.min(*x);
            xmax = xmax.max(*x);
            ymin = ymin.min(*y);
            ymax = ymax.max(*y);
        }
        let pad_x = 0.06 * (xmax - xmin).max(1.0);
        let pad_y = 0.06 * (ymax - ymin).max(1.0);
        let mut canvas = SvgCanvas::new(
            width,
            height,
            (xmin - pad_x, xmax + pad_x),
            (ymin - pad_y, ymax + pad_y),
        )?;
        canvas.axes();
        for (i, s) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            canvas.polyline(&s.points, color, 1.5);
            for &(x, y) in &s.points {
                canvas.circle(x, y, 2.0, color);
            }
            if let Some(&(x, y)) = s.points.last() {
                canvas.text(x, y, &s.label);
            }
        }
        Ok(canvas.into_svg())
    }

    /// Exports the figure as CSV (`series,x,t` rows).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,x,t\n");
        for s in &self.series {
            for (x, y) in &s.points {
                out.push_str(&format!("{},{x},{y}\n", s.label));
            }
        }
        out
    }
}

fn waypoints_series(label: &str, traj: &faultline_core::PiecewiseTrajectory) -> Series {
    Series::new(label, traj.waypoints().iter().map(|p| (p.x, p.t)).collect())
}

/// **Figure 1**: a general zig-zag strategy with a handful of turning
/// points `(x_i, t_i)` — no cone discipline, arbitrary reversals.
///
/// # Errors
///
/// Never fails in practice; propagates trajectory construction errors.
pub fn fig1() -> Result<FigureData> {
    let traj = TrajectoryBuilder::from_origin()
        .sweep_to(1.5)
        .sweep_to(-2.0)
        .sweep_to(3.5)
        .sweep_to(-4.5)
        .finish()?;
    Ok(FigureData {
        name: "fig1",
        title: "A general zig-zag strategy with turning points (x_i, t_i)".to_owned(),
        series: vec![waypoints_series("trajectory", &traj)],
    })
}

/// **Figure 2**: a zig-zag strategy defined by the cone `C_beta`
/// (`beta = 2`) and a point on its boundary.
///
/// # Errors
///
/// Propagates construction failures.
pub fn fig2() -> Result<FigureData> {
    let beta = 2.0;
    let cone = Cone::new(beta)?;
    let plan = ZigZagPlan::new(cone, 1.0)?;
    let horizon = 60.0;
    let traj = plan.materialize(horizon)?;
    let reach = traj.max_excursion() * 1.05;
    Ok(FigureData {
        name: "fig2",
        title: format!("Zig-zag defined by cone C_beta (beta = {beta}) and seed (1, {beta})"),
        series: vec![
            Series::new("cone t = beta x", vec![(0.0, 0.0), (reach, beta * reach)]),
            Series::new("cone t = -beta x", vec![(0.0, 0.0), (-reach, beta * reach)]),
            waypoints_series("robot", &traj),
        ],
    })
}

/// **Figure 3**: a proportional schedule for `n = 4` robots in the cone
/// `C_2`, showing the interleaved turning points.
///
/// # Errors
///
/// Propagates construction failures.
pub fn fig3() -> Result<FigureData> {
    let beta = 2.0;
    let schedule = faultline_core::ProportionalSchedule::new(4, beta)?;
    let horizon = schedule.required_horizon(4, 8.0);
    let mut series = Vec::new();
    let mut reach: f64 = 1.0;
    for (i, plan) in schedule.plans().iter().enumerate() {
        let traj = plan.materialize(horizon)?;
        reach = reach.max(traj.max_excursion());
        series.push(waypoints_series(&format!("a{i}"), &traj));
    }
    let reach = reach * 1.05;
    series.push(Series::new("cone t = beta x", vec![(0.0, 0.0), (reach, beta * reach)]));
    series.push(Series::new("cone t = -beta x", vec![(0.0, 0.0), (-reach, beta * reach)]));
    Ok(FigureData {
        name: "fig3",
        title: "Proportional schedule for n = 4 robots in the cone C_2".to_owned(),
        series,
    })
}

/// **Figure 4**: searching by three robots, one of which may be faulty:
/// the three trajectories of `A(3, 1)` plus the boundary of the
/// 2-coverage "tower" region (points `(x, T_2(x))`).
///
/// # Errors
///
/// Propagates construction failures.
pub fn fig4() -> Result<FigureData> {
    let params = Params::new(3, 1)?;
    let alg = Algorithm::design(params)?;
    let xmax = 6.0;
    let horizon = alg.required_horizon(xmax)?;
    let plans = alg.plans();
    let mut series = Vec::new();
    for (i, plan) in plans.iter().enumerate() {
        series.push(waypoints_series(&format!("a{i}"), &plan.materialize(horizon)?));
    }
    let fleet = Fleet::from_plans(&plans, horizon)?;
    let mut tower = Vec::new();
    for x in numeric::linspace(-xmax, xmax, 241) {
        if x.abs() < 1.0 {
            continue; // targets are at distance >= 1
        }
        if let Some(t) = fleet.visit_time(x, params.required_visits()) {
            tower.push((x, t));
        }
    }
    series.push(Series::new("tower: T_2(x)", tower));
    Ok(FigureData {
        name: "fig4",
        title: "Three robots, one faulty: trajectories of A(3,1) and the 2-coverage tower"
            .to_owned(),
        series,
    })
}

/// **Figure 6**: a positive and a negative trajectory for `x = 2`
/// (first visits to `{1, x, -1, -x}` in canonical order).
///
/// # Errors
///
/// Propagates construction failures.
pub fn fig6() -> Result<FigureData> {
    let x = 2.0;
    let positive = TrajectoryBuilder::from_origin().sweep_to(x).sweep_to(-x).finish()?;
    let negative = TrajectoryBuilder::from_origin().sweep_to(-x).sweep_to(x).finish()?;
    debug_assert_eq!(
        lower_bound::classify(&positive, x)?,
        Some(lower_bound::TrajectoryClass::Positive)
    );
    debug_assert_eq!(
        lower_bound::classify(&negative, x)?,
        Some(lower_bound::TrajectoryClass::Negative)
    );
    Ok(FigureData {
        name: "fig6",
        title: "Positive (solid) and negative (dotted) trajectories for x = 2".to_owned(),
        series: vec![
            waypoints_series("positive: 1, x, -1, -x", &positive),
            waypoints_series("negative: -1, -x, 1, x", &negative),
        ],
    })
}

/// **Figure 7**: the adversarial target placements
/// `{±1, ±x_(n-1), ..., ±x_0}` of Theorem 2 for `n = 5`, drawn on the
/// line `t = 0`.
///
/// # Errors
///
/// Propagates solver failures.
pub fn fig7() -> Result<FigureData> {
    let n = 5;
    let alpha = lower_bound::alpha(n)?;
    let xs = lower_bound::adversary_points(n, alpha)?;
    let mut placements = vec![(1.0, 0.0), (-1.0, 0.0)];
    for &x in &xs {
        placements.push((x, 0.0));
        placements.push((-x, 0.0));
    }
    placements.sort_by(|a, b| a.0.total_cmp(&b.0));
    Ok(FigureData {
        name: "fig7",
        title: format!(
            "Adversarial placements for n = {n} (alpha = {alpha:.4}): x_i = 2^(i+1)/((a-1)^i (a-3))"
        ),
        series: vec![Series::new("placements", placements)],
    })
}

/// All figure generators, in paper order.
///
/// # Errors
///
/// Propagates the first failing generator.
pub fn all_figures() -> Result<Vec<FigureData>> {
    Ok(vec![fig1()?, fig2()?, fig3()?, fig4()?, fig6()?, fig7()?])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figures_generate() {
        let figs = all_figures().unwrap();
        assert_eq!(figs.len(), 6);
        for fig in &figs {
            assert!(!fig.series.is_empty(), "{}", fig.name);
            for s in &fig.series {
                assert!(!s.points.is_empty(), "{}: {}", fig.name, s.label);
                for (x, y) in &s.points {
                    assert!(x.is_finite() && y.is_finite(), "{}: {}", fig.name, s.label);
                }
            }
        }
    }

    #[test]
    fn fig1_has_four_turning_points() {
        let fig = fig1().unwrap();
        // Origin + 4 turning targets = 5 waypoints.
        assert_eq!(fig.series[0].points.len(), 5);
    }

    #[test]
    fn fig3_turning_points_interleave_geometrically() {
        let fig = fig3().unwrap();
        // Collect positive turning points (skip cone series).
        let mut taus: Vec<f64> = fig
            .series
            .iter()
            .filter(|s| s.label.starts_with('a'))
            .flat_map(|s| s.points.iter())
            .filter(|(x, t)| *t > 0.0 && *x > 0.0 && (*t - 2.0 * x).abs() < 1e-9)
            .map(|&(x, _)| x)
            .collect();
        taus.sort_by(f64::total_cmp);
        taus.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        let r = faultline_core::ProportionalSchedule::new(4, 2.0).unwrap().ratio();
        for w in taus.windows(2) {
            assert!((w[1] / w[0] - r).abs() < 1e-6, "{} / {}", w[1], w[0]);
        }
        assert!(taus.len() >= 4);
    }

    #[test]
    fn fig4_tower_respects_cr() {
        let fig = fig4().unwrap();
        let cr = faultline_core::ratio::cr_upper(Params::new(3, 1).unwrap());
        let tower = fig.series.iter().find(|s| s.label.starts_with("tower")).unwrap();
        for &(x, t) in &tower.points {
            assert!(t / x.abs() <= cr + 1e-9, "tower breaches the CR at x = {x}");
            assert!(t >= x.abs(), "faster than light at x = {x}");
        }
    }

    #[test]
    fn fig7_placements_are_symmetric_and_sorted() {
        let fig = fig7().unwrap();
        let pts = &fig.series[0].points;
        assert_eq!(pts.len(), 12); // ±1 and ±x_i for i = 0..4
        assert!(pts.windows(2).all(|w| w[0].0 < w[1].0));
        let sum: f64 = pts.iter().map(|p| p.0).sum();
        assert!(sum.abs() < 1e-9, "placements are mirror-symmetric");
    }

    #[test]
    fn svg_and_csv_exports_work() {
        let fig = fig2().unwrap();
        let svg = fig.to_svg(640.0, 480.0).unwrap();
        assert!(svg.contains("<svg"));
        assert!(svg.contains("polyline"));
        let csv = fig.to_csv();
        assert!(csv.starts_with("series,x,t\n"));
        assert!(csv.lines().count() > 3);
    }
}
