//! Regeneration of **Figure 5**: the two competitive-ratio curves of
//! the paper.
//!
//! * Left: `CR(n) = (2 + 2/n)^(1+1/n) (2/n)^(-1/n) + 1` for
//!   `n = 2f + 1`, plotted over odd `n` (the paper uses `n = 3..20`).
//! * Right: the asymptotic ratio `(4/a)^(2/a) (4/a - 2)^(1-2/a) + 1`
//!   for a fixed reliable proportion `a = n/f`, `1 < a < 2`.

use faultline_core::{lower_bound, numeric, ratio, Params, Result};
use faultline_strategies::PaperStrategy;
use serde::{Deserialize, Serialize};

use crate::ascii::{line_chart, Series};
use crate::supremum::measure_strategy_cr;

/// One sample of the Figure 5 (left) curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig5LeftSample {
    /// Number of robots (`n = 2f + 1`, odd).
    pub n: usize,
    /// Closed-form competitive ratio of `A(2f+1, f)`.
    pub cr: f64,
    /// Corollary 1 upper envelope `3 + 4 ln n / n`.
    pub corollary1: f64,
    /// Corollary 2 lower envelope `3 + 2 ln n/n - 2 ln ln n/n`.
    pub corollary2: f64,
    /// Theorem 2 lower bound `alpha(n)`.
    pub alpha: f64,
    /// Empirically measured supremum (only for small `n`, when
    /// requested).
    pub measured: Option<f64>,
}

/// Generates the Figure 5 (left) series over odd `n` in
/// `[n_min, n_max]`; when `measure_up_to > 0`, rows with
/// `n <= measure_up_to` also carry an empirical supremum scan.
///
/// # Errors
///
/// Returns an error for invalid ranges or failed measurements.
pub fn fig5_left(n_min: usize, n_max: usize, measure_up_to: usize) -> Result<Vec<Fig5LeftSample>> {
    let start = if n_min.is_multiple_of(2) { n_min + 1 } else { n_min };
    let mut out = Vec::new();
    for n in (start.max(3)..=n_max).step_by(2) {
        let f = (n - 1) / 2;
        let params = Params::new(n, f)?;
        let measured = if n <= measure_up_to {
            Some(measure_strategy_cr(&PaperStrategy::new(), params, 50.0, 80)?.empirical)
        } else {
            None
        };
        out.push(Fig5LeftSample {
            n,
            cr: ratio::cr_odd_n(n)?,
            corollary1: ratio::corollary1_upper(n)?,
            corollary2: lower_bound::corollary2_lower(n)?,
            alpha: lower_bound::alpha(n)?,
            measured,
        });
    }
    Ok(out)
}

/// One sample of the Figure 5 (right) curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig5RightSample {
    /// The reliable proportion `a = n/f`.
    pub a: f64,
    /// Asymptotic competitive ratio at that proportion.
    pub cr: f64,
}

/// Generates the Figure 5 (right) series over `a` in `(1, 2]`.
///
/// # Errors
///
/// Returns an error when `samples < 2`.
pub fn fig5_right(samples: usize) -> Result<Vec<Fig5RightSample>> {
    if samples < 2 {
        return Err(faultline_core::Error::domain("fig5 right needs at least 2 samples"));
    }
    // Stay strictly inside (1, 2]: start a hair above 1 where the curve
    // is finite (it tends to 9 as a -> 1+).
    numeric::linspace(1.0 + 1e-3, 2.0, samples)
        .into_iter()
        .map(|a| Ok(Fig5RightSample { a, cr: ratio::asymptotic_cr(a)? }))
        .collect()
}

/// Renders the left plot as a terminal chart (analytic curve plus the
/// two corollary envelopes).
#[must_use]
pub fn render_left(samples: &[Fig5LeftSample]) -> String {
    let cr: Vec<(f64, f64)> = samples.iter().map(|s| (s.n as f64, s.cr)).collect();
    let c1: Vec<(f64, f64)> = samples.iter().map(|s| (s.n as f64, s.corollary1)).collect();
    let c2: Vec<(f64, f64)> = samples.iter().map(|s| (s.n as f64, s.corollary2)).collect();
    line_chart(
        &[
            Series::new("CR of A(2f+1, f)", cr),
            Series::new("3 + 4 ln n / n (Cor. 1)", c1),
            Series::new("3 + 2 ln n/n - 2 ln ln n/n (Cor. 2)", c2),
        ],
        72,
        20,
    )
}

/// Renders the right plot as a terminal chart.
#[must_use]
pub fn render_right(samples: &[Fig5RightSample]) -> String {
    let pts: Vec<(f64, f64)> = samples.iter().map(|s| (s.a, s.cr)).collect();
    line_chart(&[Series::new("(4/a)^(2/a) (4/a-2)^(1-2/a) + 1", pts)], 72, 20)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn left_curve_shape() {
        let samples = fig5_left(3, 21, 0).unwrap();
        assert_eq!(samples.len(), 10);
        assert_eq!(samples[0].n, 3);
        assert!((samples[0].cr - 5.233).abs() < 1e-3, "paper's n = 3 value");
        // Decreasing towards 3, sandwiched by the corollaries.
        for w in samples.windows(2) {
            assert!(w[1].cr < w[0].cr);
        }
        for s in &samples {
            assert!(s.cr > 3.0);
            assert!(s.alpha < s.cr, "lower bound below the upper bound at n = {}", s.n);
            assert!(s.corollary2 <= s.alpha + 1e-9, "n = {}", s.n);
        }
    }

    #[test]
    fn left_curve_measured_overlay_matches() {
        let samples = fig5_left(3, 9, 9).unwrap();
        for s in samples {
            let measured = s.measured.expect("requested measurement");
            assert!(
                (measured - s.cr).abs() < 5e-3,
                "n = {}: measured {measured} vs analytic {}",
                s.n,
                s.cr
            );
        }
    }

    #[test]
    fn left_handles_even_start() {
        let samples = fig5_left(4, 8, 0).unwrap();
        assert_eq!(samples[0].n, 5);
    }

    #[test]
    fn right_curve_shape() {
        let samples = fig5_right(101).unwrap();
        assert_eq!(samples.len(), 101);
        // Near a = 1 the ratio approaches 9; at a = 2 it is 3.
        assert!(samples[0].cr > 8.9);
        assert!((samples.last().unwrap().cr - 3.0).abs() < 1e-9);
        for w in samples.windows(2) {
            assert!(w[1].cr < w[0].cr, "monotone decreasing");
        }
        assert!(fig5_right(1).is_err());
    }

    #[test]
    fn renders_are_nonempty() {
        let left = fig5_left(3, 15, 0).unwrap();
        assert!(render_left(&left).contains("Cor. 1"));
        let right = fig5_right(40).unwrap();
        assert!(render_right(&right).contains('*'));
    }
}
