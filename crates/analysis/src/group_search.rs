//! Extension experiment: the **arrival-index spectrum** `CR_k`.
//!
//! The paper's objective is `T_(f+1)` — the `(f+1)`-st distinct robot
//! arrival. Generalizing the index `k` interpolates between classic
//! search (`k = 1`, first arrival) and *group search* (`k = n`, last
//! arrival — the objective of Chrobak et al., SOFSEM 2015, the paper's
//! reference [14]). This experiment measures
//! `CR_k = sup_x T_k(x)/|x|` for every `k` on the paper's schedule and
//! on the herd-doubling baseline, showing where each schedule's
//! redundancy budget goes.

use faultline_core::coverage::Fleet;
use faultline_core::{Params, Result};
use faultline_strategies::Strategy;
use serde::{Deserialize, Serialize};

use crate::supremum::fleet_targets;

/// Measured `CR_k` for one arrival index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KSample {
    /// Arrival index (`1..=n`).
    pub k: usize,
    /// Measured supremum of `T_k(x)/|x|` (infinite when some target is
    /// not reached by `k` distinct robots within the horizon).
    pub cr: f64,
}

/// Measures the full arrival-index spectrum of a strategy.
///
/// # Errors
///
/// Propagates plan generation and scan failures.
pub fn k_spectrum(
    strategy: &dyn Strategy,
    params: Params,
    xmax: f64,
    grid: usize,
) -> Result<Vec<KSample>> {
    let plans = strategy.plans(params)?;
    // The last arrival needs far more time than T_(f+1): be generous.
    let horizon = 8.0 * strategy.horizon_hint(params, xmax * 1.001);
    let fleet = Fleet::from_plans(&plans, horizon)?;
    let targets = fleet_targets(&fleet, xmax, grid)?;
    (1..=params.n())
        .map(|k| {
            let scan = fleet.supremum(&targets, k)?;
            Ok(KSample { k, cr: scan.ratio })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_strategies::{HerdDoublingStrategy, PaperStrategy};

    #[test]
    fn spectrum_is_monotone_in_k() {
        let params = Params::new(5, 2).unwrap();
        let spectrum = k_spectrum(&PaperStrategy::new(), params, 12.0, 24).unwrap();
        assert_eq!(spectrum.len(), 5);
        for w in spectrum.windows(2) {
            assert!(
                w[1].cr >= w[0].cr - 1e-9,
                "CR_k must not decrease: k = {} -> {}",
                w[0].k,
                w[1].k
            );
        }
        // The paper's design point k = f + 1 = 3 matches Theorem 1.
        let at_design = spectrum.iter().find(|s| s.k == 3).unwrap();
        let cr = faultline_core::ratio::cr_upper(params);
        assert!((at_design.cr - cr).abs() < 5e-3, "{} vs {cr}", at_design.cr);
    }

    #[test]
    fn herd_spectrum_is_flat() {
        // All herd robots coincide: every arrival index costs the same.
        let params = Params::new(3, 1).unwrap();
        let spectrum = k_spectrum(&HerdDoublingStrategy::new(), params, 80.0, 40).unwrap();
        let first = spectrum[0].cr;
        for s in &spectrum {
            assert!((s.cr - first).abs() < 1e-9, "herd CR_k must be flat");
        }
    }

    #[test]
    fn paper_beats_herd_at_design_index_but_not_at_last_arrival() {
        // The proportional schedule spends its redundancy on k = f + 1;
        // the herd spends it nowhere (flat 9-ish everywhere). At the
        // design index the paper wins.
        let params = Params::new(3, 1).unwrap();
        let paper = k_spectrum(&PaperStrategy::new(), params, 40.0, 32).unwrap();
        let herd = k_spectrum(&HerdDoublingStrategy::new(), params, 40.0, 32).unwrap();
        let at = |v: &[KSample], k: usize| v.iter().find(|s| s.k == k).unwrap().cr;
        assert!(at(&paper, 2) < at(&herd, 2), "design index k = f + 1");
        // At the last arrival the spread-out schedule pays a premium.
        assert!(at(&paper, 3) > at(&paper, 2));
    }
}
