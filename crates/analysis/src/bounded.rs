//! Extension experiment: competitive ratio with a **known distance
//! bound** `D` (the paper's reference [10] transplanted to the faulty
//! setting).
//!
//! For each bound `D`, every robot's plan is clamped to `[-D, D]` and
//! the bounded competitive ratio `sup_{1 <= |x| <= D} T_(f+1)(x)/|x|`
//! is measured.
//!
//! **Finding:** clamping improves the ratio only while `D` clips the
//! *early* turning points (roughly `D` below the second interleaved
//! turning point). The supremum of `K` is attained on *outbound*
//! sweeps, which clamping never shortens, so once `D` clears the first
//! few excursions the bounded ratio equals the unbounded Theorem 1
//! value exactly. Improving the large-`D` case would require
//! redesigning `beta` as a function of `D` (as [10] does for a single
//! robot) — recorded as future work in DESIGN.md.

use faultline_core::coverage::adversarial_targets;
use faultline_core::{BoundedAlgorithm, Fleet, Params, Result};
use serde::{Deserialize, Serialize};

/// One sample of the bounded-distance sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundedSample {
    /// The known distance bound `D`.
    pub bound: f64,
    /// Measured bounded competitive ratio.
    pub measured_cr: f64,
    /// The unbounded Theorem 1 ratio, for reference.
    pub unbounded_cr: f64,
}

/// Measures the bounded competitive ratio for one `D`.
///
/// # Errors
///
/// Propagates construction and scan failures.
pub fn bounded_cr(params: Params, bound: f64, grid: usize) -> Result<BoundedSample> {
    let algorithm = BoundedAlgorithm::design(params, bound)?;
    let horizon = algorithm.required_horizon();
    let plans = algorithm.plans()?;
    let fleet = Fleet::from_plans(&plans, horizon)?;
    // Turning points of the clamped fleet (includes the ±D shuttles).
    let turning: Vec<f64> =
        fleet.trajectories().iter().flat_map(|t| t.turning_points()).map(|p| p.x).collect();
    let targets: Vec<f64> = adversarial_targets(&turning, bound * (1.0 + 1e-9), grid, 1e-9)?
        .into_iter()
        .filter(|x| x.abs() <= bound)
        .collect();
    let scan = fleet.supremum(&targets, params.required_visits())?;
    Ok(BoundedSample {
        bound,
        measured_cr: scan.ratio,
        unbounded_cr: faultline_core::ratio::cr_upper(params),
    })
}

/// Sweeps the distance bound.
///
/// # Errors
///
/// Propagates per-bound failures.
pub fn bound_sweep(params: Params, bounds: &[f64], grid: usize) -> Result<Vec<BoundedSample>> {
    bounds.iter().map(|&d| bounded_cr(params, d, grid)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_cr_below_unbounded_and_increasing() {
        let params = Params::new(3, 1).unwrap();
        let samples = bound_sweep(params, &[1.5, 3.0, 8.0, 30.0], 48).unwrap();
        for s in &samples {
            assert!(s.measured_cr.is_finite(), "D = {}: coverage incomplete", s.bound);
            assert!(
                s.measured_cr <= s.unbounded_cr + 1e-6,
                "D = {}: {} above unbounded {}",
                s.bound,
                s.measured_cr,
                s.unbounded_cr
            );
        }
        // Larger D is (weakly) harder.
        for w in samples.windows(2) {
            assert!(
                w[1].measured_cr >= w[0].measured_cr - 1e-9,
                "D = {} vs {}",
                w[0].bound,
                w[1].bound
            );
        }
    }

    #[test]
    fn bounded_cr_converges_to_unbounded() {
        let params = Params::new(3, 1).unwrap();
        let far = bounded_cr(params, 200.0, 64).unwrap();
        assert!(
            (far.measured_cr - far.unbounded_cr).abs() < 0.05,
            "D = 200: {} vs {}",
            far.measured_cr,
            far.unbounded_cr
        );
    }

    #[test]
    fn works_for_n_equals_f_plus_one() {
        // The single-group regime (doubling) also benefits from a bound.
        let params = Params::new(2, 1).unwrap();
        let s = bounded_cr(params, 4.0, 48).unwrap();
        assert!(s.measured_cr < 9.0);
        assert!(s.measured_cr.is_finite());
    }
}
