//! # faultline-analysis
//!
//! The evaluation toolkit that regenerates every table and figure of
//! *Search on a Line with Faulty Robots* (PODC 2016):
//!
//! * [`table1`] — Table 1 (upper/lower bounds and expansion factors for
//!   the paper's `(n, f)` pairs) with an empirical cross-check column.
//! * [`fig5`] — both Figure 5 curves with the corollary envelopes and a
//!   measured overlay.
//! * [`figures`] — data generators for the illustrative Figures 1–4,
//!   6, 7 (CSV and SVG export).
//! * [`supremum`] — empirical competitive-ratio measurement through two
//!   independent paths (analytic coverage and the event simulator),
//!   plus the typed [`SupremumQuery`] request form.
//! * [`scenario`] — declarative JSON scenario documents, runnable from
//!   the CLI, the query service or programmatically.
//! * [`ablation`] — the beta-sweep and fault-misestimation ablations.
//! * [`ascii`] / [`svg`] — terminal tables/charts and SVG space–time
//!   diagrams.
//! * [`report`] — paper-vs-measured markdown reports (EXPERIMENTS.md).
//! * [`parallel`] — crossbeam-based parallel sweeps.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// `!(x > limit)` deliberately rejects NaN where `x <= limit` would not.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod ablation;
pub mod ascii;
pub mod average_case;
pub mod bounded;
pub mod convergence;
pub mod exact;
pub mod fig5;
pub mod figures;
pub mod group_search;
pub mod parallel;
pub mod randomized;
pub mod report;
pub mod scenario;
pub mod supremum;
pub mod svg;
pub mod table1;
pub mod timeline;
pub mod turncost;
pub mod verification;

pub use ascii::{line_chart, render_table, Series};
pub use exact::{
    exact_expected_supremum, exact_supremum, exact_supremum_enclosed, exact_supremum_geometry,
    EnclosedScan, ExactScan,
};
pub use figures::FigureData;
pub use report::{Comparison, ExperimentReport};
pub use scenario::{run_document, Scenario, ScenarioResult};
pub use supremum::{
    measure_free_schedule_cr, measure_free_schedule_cr_grid, measure_free_schedule_expected_cr,
    measure_free_schedule_expected_cr_grid, measure_free_schedule_profile,
    measure_free_schedule_profile_grid, measure_strategy_cr, measure_strategy_cr_grid,
    measure_strategy_cr_sim, resolve_strategy, FreeScheduleProfile, MeasuredCr, SupremumQuery,
    SupremumReport,
};
pub use table1::Table1Row;
