//! The verification matrix: three fully independent evaluations of the
//! same quantity, cross-checked pairwise.
//!
//! For a proportional schedule, the worst-case detection time
//! `T_(f+1)(x)` can be computed by
//!
//! 1. the **exact piecewise closed form** (`faultline_core::ClosedForm`,
//!    derived symbolically from Lemmas 2 and 4),
//! 2. **numeric coverage** queries over materialized trajectories
//!    (`faultline_core::coverage::Fleet`),
//! 3. the **discrete-event simulator** with the worst-case fault
//!    adversary (`faultline_sim`).
//!
//! Agreement across all three, over dense grids and at the delicate
//! turning-point limits, is the repository's strongest correctness
//! evidence; the matrix powers both an integration test and the
//! `repro verify` report.

use faultline_core::closed_form::ClosedForm;
use faultline_core::coverage::Fleet;
use faultline_core::{numeric, Algorithm, Params, Result};
use faultline_sim::engine::SimConfig;
use faultline_sim::{worst_case_outcome, Target};
use serde::{Deserialize, Serialize};

/// One cell of the verification matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatrixCell {
    /// Target position checked.
    pub x: f64,
    /// `T_(f+1)(x)` from the closed form.
    pub closed_form: f64,
    /// `T_(f+1)(x)` from coverage queries.
    pub coverage: f64,
    /// `T_(f+1)(x)` from the worst-case simulation.
    pub simulation: f64,
}

impl MatrixCell {
    /// The largest relative disagreement among the three paths.
    #[must_use]
    pub fn max_relative_gap(&self) -> f64 {
        let vals = [self.closed_form, self.coverage, self.simulation];
        let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (hi - lo) / hi.max(1.0)
    }
}

/// Result of running the matrix for one `(n, f)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixReport {
    /// Robots.
    pub n: usize,
    /// Fault budget.
    pub f: usize,
    /// Checked cells.
    pub cells: Vec<MatrixCell>,
    /// Largest relative disagreement over all cells.
    pub worst_gap: f64,
}

/// Runs the verification matrix for `params` over a log grid up to
/// `xmax` (both sides) plus the first turning-point right-hand limits.
///
/// # Errors
///
/// Propagates design, materialization and evaluation failures; fails
/// when the parameters are not in the proportional regime (the closed
/// form only exists there).
pub fn run_matrix(params: Params, xmax: f64, grid: usize) -> Result<MatrixReport> {
    let alg = Algorithm::design(params)?;
    let schedule = alg.schedule().ok_or_else(|| {
        faultline_core::Error::invalid_params(
            params.n(),
            params.f(),
            "the verification matrix needs the proportional regime",
        )
    })?;
    let cf = ClosedForm::new(schedule);
    let horizon = alg.required_horizon(xmax * 1.01)?;
    let trajectories: Vec<_> =
        alg.plans().iter().map(|p| p.materialize(horizon)).collect::<Result<Vec<_>>>()?;
    let fleet = Fleet::new(trajectories.clone())?;

    let mut targets: Vec<f64> = Vec::new();
    for x in numeric::logspace(1.0, xmax, grid)? {
        targets.push(x);
        targets.push(-x);
    }
    for j in 0..3i64 {
        let tau = schedule.turning_position(j);
        if tau * 1.001 < xmax {
            targets.push(tau * (1.0 + 1e-9));
            targets.push(-tau * (1.0 + 1e-9));
        }
    }

    let k = params.required_visits();
    let mut cells = Vec::with_capacity(targets.len());
    let mut worst_gap = 0.0f64;
    for &x in &targets {
        let closed = cf.visit_time(x, params.f())?;
        let coverage = fleet.visit_time(x, k).ok_or_else(|| {
            faultline_core::Error::domain(format!("coverage failed to confirm x = {x}"))
        })?;
        let sim = worst_case_outcome(
            trajectories.clone(),
            Target::new(x)?,
            params.f(),
            SimConfig::default(),
        )?
        .detection
        .ok_or_else(|| {
            faultline_core::Error::domain(format!("simulation failed to confirm x = {x}"))
        })?
        .time;
        let cell = MatrixCell { x, closed_form: closed, coverage, simulation: sim };
        worst_gap = worst_gap.max(cell.max_relative_gap());
        cells.push(cell);
    }
    Ok(MatrixReport { n: params.n(), f: params.f(), cells, worst_gap })
}

/// Runs the matrix for a batch of parameter pairs (in parallel) and
/// returns the reports.
///
/// # Errors
///
/// Propagates the first failure.
pub fn run_matrix_batch(
    pairs: &[(usize, usize)],
    xmax: f64,
    grid: usize,
) -> Result<Vec<MatrixReport>> {
    crate::parallel::par_map(pairs, |&(n, f)| {
        let params = Params::new(n, f)?;
        run_matrix(params, xmax, grid)
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_agrees_for_representative_pairs() {
        for (n, f) in [(2usize, 1usize), (3, 1), (5, 3)] {
            let report = run_matrix(Params::new(n, f).unwrap(), 20.0, 12).unwrap();
            assert!(
                report.worst_gap < 1e-9,
                "(n = {n}, f = {f}): worst relative gap {}",
                report.worst_gap
            );
            assert!(report.cells.len() >= 24);
        }
    }

    #[test]
    fn matrix_rejects_two_group_regime() {
        assert!(run_matrix(Params::new(4, 1).unwrap(), 10.0, 6).is_err());
    }

    #[test]
    fn batch_runs_in_parallel_and_preserves_order() {
        let pairs = [(3usize, 1usize), (4, 2), (5, 2)];
        let reports = run_matrix_batch(&pairs, 10.0, 6).unwrap();
        assert_eq!(reports.len(), 3);
        for (report, &(n, f)) in reports.iter().zip(&pairs) {
            assert_eq!((report.n, report.f), (n, f));
            assert!(report.worst_gap < 1e-9);
        }
    }

    #[test]
    fn cell_gap_computation() {
        let cell = MatrixCell { x: 1.0, closed_form: 10.0, coverage: 10.0, simulation: 10.1 };
        assert!((cell.max_relative_gap() - 0.1 / 10.1).abs() < 1e-12);
    }
}
