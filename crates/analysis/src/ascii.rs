//! Plain-text rendering: aligned tables and terminal line charts used
//! by the `repro` harness to print paper tables and figures.

/// Renders an aligned text table.
///
/// ```
/// use faultline_analysis::ascii::render_table;
/// let out = render_table(
///     &["n", "f", "CR"],
///     &[vec!["3".into(), "1".into(), "5.24".into()]],
/// );
/// assert!(out.contains("5.24"));
/// ```
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = cells.get(i).unwrap_or(&empty);
            line.push_str(&format!(" {cell:>w$} |", w = w));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push('|');
    for w in &widths {
        out.push_str(&"-".repeat(w + 2));
        out.push('|');
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// A named data series for plotting.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` samples.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    #[must_use]
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series { label: label.into(), points }
    }
}

const MARKS: &[char] = &['*', '+', 'o', 'x', '#', '@'];

/// Renders one or more series as a terminal scatter chart with axis
/// annotations. Infinite or NaN samples are skipped.
#[must_use]
pub fn line_chart(series: &[Series], width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(6);
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if pts.is_empty() {
        return "(no finite data)\n".to_owned();
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for (x, y) in &pts {
        xmin = xmin.min(*x);
        xmax = xmax.max(*x);
        ymin = ymin.min(*y);
        ymax = ymax.max(*y);
    }
    if xmax == xmin {
        xmax = xmin + 1.0;
    }
    if ymax == ymin {
        ymax = ymin + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for &(x, y) in &s.points {
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            let col = ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize;
            let row = ((y - ymin) / (ymax - ymin) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row.min(height - 1);
            grid[row][col.min(width - 1)] = mark;
        }
    }
    let mut out = String::new();
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  [{}] {}\n", MARKS[si % MARKS.len()], s.label));
    }
    out.push_str(&format!("  y: {ymin:.4} .. {ymax:.4}\n"));
    for row in grid {
        out.push_str("  |");
        out.extend(row);
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!("   x: {xmin:.4} .. {xmax:.4}\n"));
    out
}

/// Renders a horizontal-bar histogram of `values` over `bins` equal
/// buckets, with counts and bucket ranges annotated. Non-finite values
/// are counted separately.
#[must_use]
pub fn histogram(values: &[f64], bins: usize, width: usize) -> String {
    let bins = bins.max(1);
    let width = width.max(8);
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let dropped = values.len() - finite.len();
    if finite.is_empty() {
        return "(no finite data)\n".to_owned();
    }
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    let mut counts = vec![0usize; bins];
    for v in &finite {
        let idx = (((v - lo) / span) * bins as f64) as usize;
        counts[idx.min(bins - 1)] += 1;
    }
    let max_count = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (i, count) in counts.iter().enumerate() {
        let b_lo = lo + span * i as f64 / bins as f64;
        let b_hi = lo + span * (i + 1) as f64 / bins as f64;
        let bar_len = (count * width).div_ceil(max_count);
        let bar: String = "#".repeat(if *count == 0 { 0 } else { bar_len.max(1) });
        out.push_str(&format!("  [{b_lo:8.3}, {b_hi:8.3})  {count:6}  {bar}\n"));
    }
    if dropped > 0 {
        out.push_str(&format!("  (+ {dropped} non-finite samples)\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let out = render_table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["longer-name".into(), "123.456".into()]],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have equal width.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
        assert!(out.contains("longer-name"));
    }

    #[test]
    fn chart_contains_marks_and_axes() {
        let s = Series::new("cr", vec![(3.0, 5.2), (5.0, 4.4), (7.0, 4.0)]);
        let out = line_chart(&[s], 40, 10);
        assert!(out.contains('*'));
        assert!(out.contains("x: 3.0000 .. 7.0000"));
        assert!(out.contains("[*] cr"));
    }

    #[test]
    fn chart_skips_non_finite() {
        let s = Series::new("bad", vec![(f64::NAN, 1.0), (1.0, f64::INFINITY)]);
        assert_eq!(line_chart(&[s], 40, 10), "(no finite data)\n");
    }

    #[test]
    fn chart_handles_degenerate_ranges() {
        let s = Series::new("flat", vec![(1.0, 2.0), (1.0, 2.0)]);
        let out = line_chart(&[s], 20, 8);
        assert!(out.contains('*'));
    }

    #[test]
    fn multiple_series_use_distinct_marks() {
        let a = Series::new("a", vec![(0.0, 0.0)]);
        let b = Series::new("b", vec![(1.0, 1.0)]);
        let out = line_chart(&[a, b], 30, 8);
        assert!(out.contains('*') && out.contains('+'));
    }

    #[test]
    fn histogram_counts_and_bars() {
        let values = vec![1.0, 1.1, 1.2, 2.9, 3.0];
        let out = histogram(&values, 2, 20);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('#'));
        // First bucket holds three samples, second holds two.
        assert!(lines[0].contains("3"));
        assert!(lines[1].contains("2"));
    }

    #[test]
    fn histogram_reports_non_finite() {
        let out = histogram(&[1.0, f64::INFINITY], 4, 20);
        assert!(out.contains("non-finite"));
        assert_eq!(histogram(&[f64::NAN], 4, 20), "(no finite data)\n");
    }

    #[test]
    fn histogram_handles_constant_data() {
        let out = histogram(&[5.0; 10], 3, 20);
        assert!(out.contains("10"));
    }
}
