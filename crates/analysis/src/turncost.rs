//! Extension experiment: competitive ratio under **turn cost** (the
//! open combination of the paper's fault model with Demaine–Fekete–Gal
//! turn costs, the paper's reference [19]).
//!
//! For each per-reversal cost `c`, we measure the turn-cost competitive
//! ratio of the proportional schedule as a function of `beta` and
//! locate the empirically best `beta`.
//!
//! **Finding (negative result):** re-optimizing `beta` does *not* help.
//! The worst-case target sits just past the first turning point
//! (`x -> 1+`), where the `(f+1)`-st visitor has performed a fixed,
//! `beta`-independent number of reversals (2 for `A(3,1)`); the
//! turn-cost supremum is therefore `CR(beta) + c * turns`, minimized by
//! the paper's own `beta*`. Turn costs shift the achievable ratio up by
//! an additive `c * turns` but do not move the optimal cone. (Targets
//! far out pay more reversals, but `turns/x -> 0`, so they never
//! dominate.)

use faultline_core::coverage::Fleet;
use faultline_core::{numeric, ratio, Params, Result, TurnCost};
use faultline_strategies::{FixedBetaStrategy, Strategy};
use serde::{Deserialize, Serialize};

use crate::supremum::fleet_targets;

/// Measures the turn-cost competitive ratio of the proportional
/// schedule `S_beta(n)` for `params` under per-turn cost `c`.
///
/// # Errors
///
/// Propagates construction and evaluation failures.
pub fn cost_cr(params: Params, beta: f64, c: f64, xmax: f64, grid: usize) -> Result<f64> {
    let strategy = FixedBetaStrategy::new(beta)?;
    let plans = strategy.plans(params)?;
    let horizon = strategy.horizon_hint(params, xmax * 1.001);
    let fleet = Fleet::from_plans(&plans, horizon)?;
    let targets = fleet_targets(&fleet, xmax, grid)?;
    let model = TurnCost::new(c)?;
    let (sup, _) = model.supremum(fleet.trajectories(), &targets, params.required_visits())?;
    Ok(sup)
}

/// One row of the turn-cost sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TurnCostSample {
    /// Per-reversal cost.
    pub c: f64,
    /// The empirically best cone parameter for this cost.
    pub best_beta: f64,
    /// The turn-cost competitive ratio at `best_beta`.
    pub best_cr: f64,
    /// The turn-cost ratio when naively keeping the paper's `beta*`.
    pub cr_at_paper_beta: f64,
}

/// Sweeps the per-turn cost and, for each value, golden-section
/// searches the empirically best `beta`.
///
/// # Errors
///
/// Propagates measurement failures.
pub fn sweep(params: Params, costs: &[f64], xmax: f64, grid: usize) -> Result<Vec<TurnCostSample>> {
    let paper_beta = ratio::optimal_beta(params)?;
    costs
        .iter()
        .map(|&c| {
            let objective =
                |beta: f64| cost_cr(params, beta, c, xmax, grid).unwrap_or(f64::INFINITY);
            let best_beta =
                numeric::golden_min(objective, 1.0 + 1e-6, 8.0 * paper_beta, 1e-4, 200)?;
            Ok(TurnCostSample {
                c,
                best_beta,
                best_cr: cost_cr(params, best_beta, c, xmax, grid)?,
                cr_at_paper_beta: cost_cr(params, paper_beta, c, xmax, grid)?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cost_reduces_to_the_paper() {
        let params = Params::new(3, 1).unwrap();
        let paper_beta = ratio::optimal_beta(params).unwrap();
        let sup = cost_cr(params, paper_beta, 0.0, 25.0, 48).unwrap();
        let cr = ratio::cr_upper(params);
        assert!((sup - cr).abs() < 5e-3, "sup = {sup}, CR = {cr}");
    }

    #[test]
    fn cost_cr_is_monotone_in_c() {
        let params = Params::new(3, 1).unwrap();
        let beta = ratio::optimal_beta(params).unwrap();
        let mut prev = 0.0;
        for c in [0.0, 0.25, 1.0, 4.0] {
            let sup = cost_cr(params, beta, c, 25.0, 48).unwrap();
            assert!(sup > prev, "c = {c}: {sup} <= {prev}");
            prev = sup;
        }
    }

    #[test]
    fn sweep_confirms_beta_star_stays_optimal() {
        let params = Params::new(3, 1).unwrap();
        let samples = sweep(params, &[0.0, 2.0, 8.0], 25.0, 32).unwrap();
        assert_eq!(samples.len(), 3);
        let paper_beta = ratio::optimal_beta(params).unwrap();
        let cr = ratio::cr_upper(params);
        for s in &samples {
            // The negative result: the best beta never drifts away from
            // the paper's beta* ...
            assert!(
                (s.best_beta - paper_beta).abs() < 0.05,
                "c = {}: best beta {} vs paper {paper_beta}",
                s.c,
                s.best_beta
            );
            // ... and re-optimizing buys (essentially) nothing.
            assert!(s.best_cr <= s.cr_at_paper_beta + 1e-9, "c = {}", s.c);
            assert!(s.best_cr >= s.cr_at_paper_beta - 5e-3, "c = {}", s.c);
            // The penalty is additive: CR + c * 2 reversals for A(3,1).
            assert!(
                (s.cr_at_paper_beta - (cr + 2.0 * s.c)).abs() < 5e-3,
                "c = {}: {} vs {}",
                s.c,
                s.cr_at_paper_beta,
                cr + 2.0 * s.c
            );
        }
    }
}
