//! Satellite property test for the exact critical-point supremum
//! engine: on random [`FreeSchedule`]s the exact supremum dominates
//! the adversarial-grid baseline and every dense pointwise probe, and
//! agrees with the grid at shared probe points to 1e-9.
//!
//! This is the in-repo twin of the `exact-supremum-dominates-grid`
//! conformance oracle: the oracle fuzzes registry strategies, this
//! test fuzzes raw free schedules (the optimizer's search space),
//! where the grid's tolerance bugs originally hid.

use faultline_analysis::{measure_free_schedule_cr, measure_free_schedule_cr_grid};
use faultline_core::{Fleet, FreeRobot, FreeSchedule};
use proptest::prelude::*;

/// Decodes eight unit floats into a well-formed robot: geometric-ish
/// expansion with per-leg ratios in `[1.3, 2.5]` so coverage always
/// converges (no bailouts — the bailout path has its own
/// deterministic tests).
fn decode_robot(u: &[f64]) -> FreeRobot {
    let side = if u[0] < 0.5 { 1.0 } else { -1.0 };
    let base = 0.2 + 1.8 * u[1];
    let extra_turns = 1 + (u[2] * 3.999) as usize; // 1..=4 tail ratios
    let mut turns = vec![base];
    for &v in &u[3..3 + extra_turns] {
        let last = *turns.last().unwrap();
        turns.push(last * (1.3 + 1.2 * v));
    }
    let first_turn_time = base * (1.0 + 2.0 * u[7]);
    FreeRobot::new(side, turns, first_turn_time).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn exact_supremum_dominates_every_grid_scan(
        raw_robots in prop::collection::vec(
            prop::collection::vec(0.0f64..1.0, 8), 2..5),
        f_raw in 0usize..4,
        xmax in 4.0f64..16.0,
        grid_points in 16usize..64,
        raw_probes in prop::collection::vec(0.0f64..1.0, 16),
    ) {
        let robots: Vec<FreeRobot> = raw_robots.iter().map(|u| decode_robot(u)).collect();
        let schedule = FreeSchedule::new(robots).unwrap();
        let f = f_raw % schedule.n();
        let exact = measure_free_schedule_cr(&schedule, f, xmax, grid_points, &[]).unwrap();
        let grid = measure_free_schedule_cr_grid(&schedule, f, xmax, grid_points, &[]).unwrap();

        // Dominance: the exact supremum can never sit below any grid
        // scan of the same window — the grid probes a finite subset of
        // the points the exact engine maximizes over.
        if grid.empirical.is_finite() {
            prop_assert!(
                exact.empirical >= grid.empirical * (1.0 - 1e-9),
                "exact {} < grid {} (f = {}, xmax = {})",
                exact.empirical, grid.empirical, f, xmax
            );
        } else {
            // A grid probe the fleet never covers lies in an interval
            // the exact engine must also flag.
            prop_assert!(
                exact.empirical.is_infinite() || exact.uncovered > 0,
                "grid found uncovered probes but exact converged to {}",
                exact.empirical
            );
        }

        // Pointwise dominance at dense random probes, and agreement at
        // the grid's own argmax (a shared probe point): rebuild the
        // fleet at a horizon generous enough to cover everything the
        // measurement converged on — `T_(f+1)` is horizon-independent
        // once `f + 1` visits exist.
        if exact.empirical.is_finite() && exact.uncovered == 0 {
            let plans = schedule.plans();
            let horizon = schedule.horizon_hint(xmax * (1.0 + 1e-6)).max(4.0 * xmax) * 256.0;
            let fleet = Fleet::from_plans(&plans, horizon).unwrap();
            for pair in raw_probes.chunks_exact(2) {
                let magnitude = 1.0 + pair[0] * (xmax - 1.0);
                let x = if pair[1] < 0.5 { magnitude } else { -magnitude };
                if let Some(ratio) = fleet.ratio_at(x, f + 1).unwrap() {
                    prop_assert!(
                        ratio <= exact.empirical * (1.0 + 1e-9),
                        "K({}) = {} exceeds the exact supremum {}",
                        x, ratio, exact.empirical
                    );
                }
            }
            if grid.empirical.is_finite() && grid.uncovered == 0 {
                let shared = fleet.ratio_at(grid.argmax, f + 1).unwrap();
                prop_assert!(
                    shared.is_some_and(|r| (r - grid.empirical).abs()
                        <= 1e-9 * grid.empirical.max(1.0)),
                    "grid argmax {} re-evaluates to {:?}, not {}",
                    grid.argmax, shared, grid.empirical
                );
            }
        }
    }
}
