//! Property tests: scenario documents round-trip through JSON with
//! every `f64` bit-exact, and the serialized form is canonical.

use faultline_scenario::{Activation, RobotSpec, ScenarioDoc};
use proptest::prelude::*;

/// A finite f64 in `[1, 100)` with full mantissa entropy, so the
/// round-trip property exercises awkward decimal expansions rather
/// than round numbers.
fn target_from_bits(bits: u64) -> f64 {
    1.0 + ((bits >> 11) as f64) * (99.0 / (1u64 << 53) as f64)
}

/// A speed in `[0.25, 4.25)` with full mantissa entropy.
fn speed_from_bits(bits: u64) -> f64 {
    0.25 + ((bits >> 11) as f64) * (4.0 / (1u64 << 53) as f64)
}

fn activation_from(kind: u32, bits: u64) -> Activation {
    match kind % 3 {
        0 => Activation::Immediate,
        1 => Activation::DelayedStart(((bits >> 11) as f64) * (10.0 / (1u64 << 53) as f64)),
        _ => Activation::Seeded { max_delay: ((bits >> 11) as f64) * (5.0 / (1u64 << 53) as f64) },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// serialize ∘ parse is the identity on valid documents,
    /// including bit-exact floats in every numeric position.
    #[test]
    fn documents_round_trip_bit_exactly(
        n in 1usize..6,
        f_raw in 0usize..6,
        half_line in any::<bool>(),
        target_bits in prop::collection::vec(any::<u64>(), 1usize..5),
        signs in prop::collection::vec(any::<bool>(), 5),
        with_robots in any::<bool>(),
        speed_bits in prop::collection::vec(any::<u64>(), 6),
        activation_kinds in prop::collection::vec(0u32..3, 6),
        activation_bits in prop::collection::vec(any::<u64>(), 6),
        seed in any::<u64>(),
    ) {
        let f = f_raw % n;
        let targets: Vec<f64> = target_bits
            .iter()
            .zip(&signs)
            .map(|(&bits, &neg)| {
                let x = target_from_bits(bits);
                if neg && !half_line { -x } else { x }
            })
            .collect();
        let robots = with_robots.then(|| {
            (0..n)
                .map(|i| RobotSpec {
                    speed: speed_from_bits(speed_bits[i]),
                    activation: activation_from(activation_kinds[i], activation_bits[i]),
                    fault_onset: None,
                })
                .collect::<Vec<_>>()
        });
        let seeded = robots.as_ref().is_some_and(|specs| {
            specs.iter().any(|s| matches!(s.activation, Activation::Seeded { .. }))
        });
        let doc = ScenarioDoc {
            version: 1,
            n,
            f,
            strategy: "paper".to_owned(),
            beta: None,
            geometry: if half_line {
                faultline_core::Geometry::HalfLine
            } else {
                faultline_core::Geometry::Line
            },
            targets,
            faulty: None,
            fault_plan: None,
            quorum: None,
            seed: seeded.then_some(seed),
            robots,
        };
        prop_assert!(doc.validate().is_ok(), "generated document must be valid");
        let json = doc.to_json().unwrap();
        let back = ScenarioDoc::from_json(&json).unwrap();
        prop_assert_eq!(&back, &doc, "round-trip must be lossless");
        // Bit-exactness, stated explicitly (PartialEq on f64 would
        // also conflate 0.0 and -0.0).
        for (a, b) in back.targets.iter().zip(&doc.targets) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        if let (Some(ra), Some(rb)) = (&back.robots, &doc.robots) {
            for (a, b) in ra.iter().zip(rb) {
                prop_assert_eq!(a.speed.to_bits(), b.speed.to_bits());
            }
        }
        // Canonical: a second serialization is byte-identical.
        prop_assert_eq!(json, back.to_json().unwrap());
    }
}
