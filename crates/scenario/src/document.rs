//! The versioned scenario document: structure, serde, validation.
//!
//! A v1 document generalizes the legacy [`faultline_analysis::Scenario`]
//! form with an explicit `version` field, a `geometry` selector and an
//! optional per-robot `robots` array:
//!
//! ```json
//! {
//!   "version": 1,
//!   "n": 3, "f": 1,
//!   "geometry": "HalfLine",
//!   "targets": [2.0, 4.5],
//!   "robots": [
//!     {"speed": 2.0},
//!     {"speed": 1.0, "activation": {"DelayedStart": 0.5}},
//!     {"speed": 1.0, "activation": {"Seeded": {"max_delay": 2.0}}}
//!   ],
//!   "seed": 7
//! }
//! ```
//!
//! Every `f64` round-trips bit-exactly through the
//! [`faultline_core::json_float`] sentinels, unknown fields are
//! rejected (a typo never silently becomes a default), and parsing
//! never panics: malformed documents surface as
//! [`faultline_core::Error::Domain`].

use faultline_core::{json_float, Error, Geometry, Params, Result};
use faultline_sim::{FaultKind, FaultMask, FaultPlan, QuorumConfig};
use faultline_strategies::strategy_by_name;
use serde::{Deserialize, Serialize};

/// The document version this build reads and writes.
pub const SCENARIO_VERSION: u32 = 1;

/// Upper bound on robot speeds: generous, but keeps `speed * horizon`
/// well inside the finite range so compiled visit schedules stay exact.
pub const MAX_SPEED: f64 = 1e6;

/// Upper bound on activation delays: keeps `delay + t / speed` far
/// from the regime where adding the delay absorbs sub-ulp waypoint
/// gaps and retimed trajectories degenerate.
pub const MAX_DELAY: f64 = 1e6;

/// How a robot comes online.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Activation {
    /// Active from `t = 0` (the paper's model, and the default).
    #[default]
    Immediate,
    /// Parked at the origin until the given start time, then follows
    /// its plan with every waypoint shifted by that delay.
    DelayedStart(f64),
    /// Start delay drawn uniformly from `[0, max_delay)` by a
    /// deterministic per-`(seed, robot)` coin on its own stream, so
    /// runs replay bit-for-bit from the scenario `seed`.
    Seeded {
        /// Exclusive upper bound on the drawn delay; `>= 0`, finite.
        max_delay: f64,
    },
}

impl Serialize for Activation {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        let value = match self {
            Activation::Immediate => serde::Value::String("Immediate".to_owned()),
            Activation::DelayedStart(t) => {
                serde::Value::Object(vec![("DelayedStart".to_owned(), json_float::encode_f64(*t))])
            }
            Activation::Seeded { max_delay } => serde::Value::Object(vec![(
                "Seeded".to_owned(),
                serde::Value::Object(vec![(
                    "max_delay".to_owned(),
                    json_float::encode_f64(*max_delay),
                )]),
            )]),
        };
        serializer.serialize_value(value)
    }
}

impl<'de> Deserialize<'de> for Activation {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        use serde::de::Error as _;
        match deserializer.take_value()? {
            serde::Value::String(s) if s == "Immediate" => Ok(Activation::Immediate),
            serde::Value::String(s) => Err(D::Error::custom(format!("unknown activation \"{s}\""))),
            value @ serde::Value::Object(_) => {
                let mut fields =
                    json_float::object_fields(value, "Activation").map_err(D::Error::custom)?;
                if fields.len() != 1 {
                    return Err(D::Error::custom(
                        "activation objects carry exactly one variant key",
                    ));
                }
                let (key, value) = fields.remove(0);
                match key.as_str() {
                    "DelayedStart" => Ok(Activation::DelayedStart(
                        json_float::decode_f64(&value, "DelayedStart").map_err(D::Error::custom)?,
                    )),
                    "Seeded" => {
                        let mut inner =
                            json_float::object_fields(value, "Seeded").map_err(D::Error::custom)?;
                        let max_delay = json_float::take_field(&mut inner, "max_delay", "Seeded")
                            .map_err(D::Error::custom)?;
                        if let Some((stray, _)) = inner.first() {
                            return Err(D::Error::custom(format!(
                                "unknown field \"{stray}\" in Seeded activation"
                            )));
                        }
                        Ok(Activation::Seeded {
                            max_delay: json_float::decode_f64(&max_delay, "max_delay")
                                .map_err(D::Error::custom)?,
                        })
                    }
                    other => Err(D::Error::custom(format!("unknown activation \"{other}\""))),
                }
            }
            _ => Err(D::Error::custom(
                "activation must be \"Immediate\", {\"DelayedStart\": t} or \
                 {\"Seeded\": {\"max_delay\": d}}",
            )),
        }
    }
}

/// Per-robot overrides; an omitted `robots` array means every robot is
/// the paper's unit-speed, immediately-active, always-faulty-or-honest
/// searcher.
#[derive(Debug, Clone, PartialEq)]
pub struct RobotSpec {
    /// Maximum speed, `> 0`, finite, `<= MAX_SPEED` (default `1.0`).
    pub speed: f64,
    /// Activation schedule (default [`Activation::Immediate`]).
    pub activation: Activation,
    /// Time at which this robot's `fault_plan` entry switches on; the
    /// sensor is healthy before it. Requires a non-`Reliable` entry in
    /// `fault_plan`, and is incompatible with `SpeedDegraded` (a
    /// motion fault cannot switch on mid-run).
    pub fault_onset: Option<f64>,
}

impl Default for RobotSpec {
    fn default() -> Self {
        RobotSpec { speed: 1.0, activation: Activation::Immediate, fault_onset: None }
    }
}

impl RobotSpec {
    /// Whether this spec is exactly the legacy default robot (bitwise
    /// unit speed, immediate activation, no onset).
    #[must_use]
    pub fn is_legacy_default(&self) -> bool {
        self.speed.to_bits() == 1.0f64.to_bits()
            && self.activation == Activation::Immediate
            && self.fault_onset.is_none()
    }
}

impl Serialize for RobotSpec {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        use serde::ser::Error as _;
        let mut fields = vec![
            ("speed".to_owned(), json_float::encode_f64(self.speed)),
            ("activation".to_owned(), serde::to_value(&self.activation).map_err(S::Error::custom)?),
        ];
        if let Some(onset) = self.fault_onset {
            fields.push(("fault_onset".to_owned(), json_float::encode_f64(onset)));
        }
        serializer.serialize_value(serde::Value::Object(fields))
    }
}

impl<'de> Deserialize<'de> for RobotSpec {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        use serde::de::Error as _;
        let mut fields = json_float::object_fields(deserializer.take_value()?, "RobotSpec")
            .map_err(D::Error::custom)?;
        let mut optional =
            |name: &str| fields.iter().position(|(key, _)| key == name).map(|i| fields.remove(i).1);
        let speed = match optional("speed") {
            Some(v) => json_float::decode_f64(&v, "speed").map_err(D::Error::custom)?,
            None => 1.0,
        };
        let activation = match optional("activation") {
            Some(v) => serde::from_value(v).map_err(D::Error::custom)?,
            None => Activation::Immediate,
        };
        let fault_onset = match optional("fault_onset") {
            Some(v) => Some(json_float::decode_f64(&v, "fault_onset").map_err(D::Error::custom)?),
            None => None,
        };
        if let Some((stray, _)) = fields.first() {
            return Err(D::Error::custom(format!("unknown field \"{stray}\" in robot spec")));
        }
        Ok(RobotSpec { speed, activation, fault_onset })
    }
}

/// A versioned, validated scenario document.
///
/// Construct with [`ScenarioDoc::from_json`] (which validates) or
/// field-by-field followed by [`ScenarioDoc::validate`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioDoc {
    /// Document version; this build reads [`SCENARIO_VERSION`].
    pub version: u32,
    /// Number of robots.
    pub n: usize,
    /// Fault tolerance.
    pub f: usize,
    /// Strategy name from the registry (default `"paper"`).
    pub strategy: String,
    /// Cone parameter, only for `strategy = "fixed-beta"`.
    pub beta: Option<f64>,
    /// Search-domain geometry (default [`Geometry::Line`]).
    pub geometry: Geometry,
    /// Target positions (each simulated independently); on the
    /// half-line every target must lie in `[1, ∞)`.
    pub targets: Vec<f64>,
    /// Explicit faulty robots; `None` = worst-case adversary.
    pub faulty: Option<Vec<usize>>,
    /// Per-robot fault kinds; mutually exclusive with `faulty`.
    pub fault_plan: Option<Vec<FaultKind>>,
    /// Claim-quorum votes (requires `fault_plan`).
    pub quorum: Option<usize>,
    /// RNG seed for randomized sweeps, coin-driven fault plans or
    /// seeded activation delays (defaults to 0).
    pub seed: Option<u64>,
    /// Per-robot overrides; `None` = all legacy defaults.
    pub robots: Option<Vec<RobotSpec>>,
}

impl Serialize for ScenarioDoc {
    fn serialize<S: serde::Serializer>(
        &self,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        use serde::ser::Error as _;
        // Resolved defaults (`strategy`, `geometry`) are always
        // emitted so the serialized form is canonical: two documents
        // meaning the same run serialize to the same bytes.
        let mut fields = vec![
            ("version".to_owned(), serde::Value::UInt(u64::from(self.version))),
            ("n".to_owned(), serde::Value::UInt(self.n as u64)),
            ("f".to_owned(), serde::Value::UInt(self.f as u64)),
            ("strategy".to_owned(), serde::Value::String(self.strategy.clone())),
            ("geometry".to_owned(), serde::to_value(&self.geometry).map_err(S::Error::custom)?),
            (
                "targets".to_owned(),
                serde::Value::Array(
                    self.targets.iter().map(|&x| json_float::encode_f64(x)).collect(),
                ),
            ),
        ];
        if let Some(beta) = self.beta {
            fields.push(("beta".to_owned(), json_float::encode_f64(beta)));
        }
        if let Some(faulty) = &self.faulty {
            fields.push(("faulty".to_owned(), serde::to_value(faulty).map_err(S::Error::custom)?));
        }
        if let Some(plan) = &self.fault_plan {
            fields
                .push(("fault_plan".to_owned(), serde::to_value(plan).map_err(S::Error::custom)?));
        }
        if let Some(quorum) = self.quorum {
            fields.push(("quorum".to_owned(), serde::Value::UInt(quorum as u64)));
        }
        if let Some(seed) = self.seed {
            fields.push(("seed".to_owned(), serde::Value::UInt(seed)));
        }
        if let Some(robots) = &self.robots {
            fields.push(("robots".to_owned(), serde::to_value(robots).map_err(S::Error::custom)?));
        }
        serializer.serialize_value(serde::Value::Object(fields))
    }
}

impl<'de> Deserialize<'de> for ScenarioDoc {
    fn deserialize<D: serde::Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<Self, D::Error> {
        use serde::de::Error as _;
        let mut fields = json_float::object_fields(deserializer.take_value()?, "ScenarioDoc")
            .map_err(D::Error::custom)?;
        let mut optional =
            |name: &str| fields.iter().position(|(key, _)| key == name).map(|i| fields.remove(i).1);
        // Version gate first: a future-versioned document must fail
        // with a diagnostic naming the supported version, not with a
        // confusing field error from a shape this build never knew.
        let version: u32 = match optional("version") {
            Some(v) => serde::from_value(v).map_err(D::Error::custom)?,
            None => {
                return Err(D::Error::custom(
                    "scenario document needs an explicit \"version\" field \
                     (this build reads version 1)",
                ))
            }
        };
        if version != SCENARIO_VERSION {
            return Err(D::Error::custom(format!(
                "unsupported scenario version {version} (this build reads \
                 version {SCENARIO_VERSION})"
            )));
        }
        let n_raw = optional("n");
        let f_raw = optional("f");
        let targets_raw = optional("targets");
        let strategy = match optional("strategy") {
            Some(v) => serde::from_value(v).map_err(D::Error::custom)?,
            None => "paper".to_owned(),
        };
        let beta = match optional("beta") {
            Some(v) => Some(json_float::decode_f64(&v, "beta").map_err(D::Error::custom)?),
            None => None,
        };
        let geometry = match optional("geometry") {
            Some(v) => serde::from_value(v).map_err(D::Error::custom)?,
            None => Geometry::Line,
        };
        let faulty = match optional("faulty") {
            Some(v) => Some(serde::from_value(v).map_err(D::Error::custom)?),
            None => None,
        };
        let fault_plan = match optional("fault_plan") {
            Some(v) => Some(serde::from_value(v).map_err(D::Error::custom)?),
            None => None,
        };
        let quorum = match optional("quorum") {
            Some(v) => Some(serde::from_value(v).map_err(D::Error::custom)?),
            None => None,
        };
        let seed = match optional("seed") {
            Some(v) => Some(serde::from_value(v).map_err(D::Error::custom)?),
            None => None,
        };
        let robots = match optional("robots") {
            Some(v) => Some(serde::from_value(v).map_err(D::Error::custom)?),
            None => None,
        };
        // Stray fields are diagnosed before missing required ones: a
        // typo'd "tragets" should name the typo, not the absence.
        if let Some((stray, _)) = fields.first() {
            return Err(D::Error::custom(format!(
                "unknown field \"{stray}\" in scenario document"
            )));
        }
        let n: usize = match n_raw {
            Some(v) => serde::from_value(v).map_err(D::Error::custom)?,
            None => return Err(D::Error::custom("scenario document needs an \"n\" field")),
        };
        let f: usize = match f_raw {
            Some(v) => serde::from_value(v).map_err(D::Error::custom)?,
            None => return Err(D::Error::custom("scenario document needs an \"f\" field")),
        };
        let targets = match targets_raw {
            Some(serde::Value::Array(items)) => items
                .iter()
                .map(|v| json_float::decode_f64(v, "targets"))
                .collect::<std::result::Result<Vec<_>, _>>()
                .map_err(D::Error::custom)?,
            Some(_) => return Err(D::Error::custom("\"targets\" must be an array of numbers")),
            None => return Err(D::Error::custom("scenario document needs a \"targets\" field")),
        };
        Ok(ScenarioDoc {
            version,
            n,
            f,
            strategy,
            beta,
            geometry,
            targets,
            faulty,
            fault_plan,
            quorum,
            seed,
            robots,
        })
    }
}

impl ScenarioDoc {
    /// Parses and validates a scenario document from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] for malformed or wrong-version JSON
    /// and [`Error::InvalidParameters`] for invalid `(n, f)`; never
    /// panics.
    pub fn from_json(json: &str) -> Result<Self> {
        let doc: ScenarioDoc = serde_json::from_str(json)
            .map_err(|e| Error::domain(format!("malformed scenario document: {e}")))?;
        doc.validate()?;
        Ok(doc)
    }

    /// Serializes the resolved document to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] on serialization failure (cannot
    /// happen for well-formed documents).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| Error::domain(format!("serialization failed: {e}")))
    }

    /// The per-robot specs, materializing the all-defaults fleet when
    /// the `robots` array was omitted.
    #[must_use]
    pub fn robot_specs(&self) -> Vec<RobotSpec> {
        match &self.robots {
            Some(specs) => specs.clone(),
            None => vec![RobotSpec::default(); self.n],
        }
    }

    /// Whether any robot draws a seeded activation delay.
    #[must_use]
    pub fn has_seeded_activation(&self) -> bool {
        self.robots.as_ref().is_some_and(|specs| {
            specs.iter().any(|s| matches!(s.activation, Activation::Seeded { .. }))
        })
    }

    /// Validates every cross-field constraint of the document.
    ///
    /// # Errors
    ///
    /// Reports invalid `(n, f)`, unknown strategies, missing/extra
    /// `beta`, empty or out-of-domain targets, over-budget fault sets,
    /// malformed robot specs, and onsets without a matching fault.
    pub fn validate(&self) -> Result<()> {
        if self.version != SCENARIO_VERSION {
            return Err(Error::domain(format!(
                "unsupported scenario version {} (this build reads version {SCENARIO_VERSION})",
                self.version
            )));
        }
        Params::new(self.n, self.f)?;
        if self.targets.is_empty() {
            return Err(Error::domain("scenario needs at least one target"));
        }
        for &x in &self.targets {
            if !x.is_finite() {
                return Err(Error::domain(format!("target {x} is not finite")));
            }
            if !self.geometry.admits_target(x) {
                return Err(Error::domain(format!(
                    "target {x} lies outside the {} adversary window",
                    self.geometry
                )));
            }
        }
        match self.strategy.as_str() {
            "fixed-beta" => {
                if self.beta.is_none() {
                    return Err(Error::domain("strategy \"fixed-beta\" requires a \"beta\" field"));
                }
            }
            "randomized-sweep" => {
                if self.beta.is_some() {
                    return Err(Error::domain(
                        "\"beta\" is only meaningful with strategy \"fixed-beta\"",
                    ));
                }
            }
            name => {
                if strategy_by_name(name).is_none() {
                    return Err(Error::domain(format!("unknown strategy \"{name}\"")));
                }
                if self.beta.is_some() {
                    return Err(Error::domain(
                        "\"beta\" is only meaningful with strategy \"fixed-beta\"",
                    ));
                }
            }
        }
        // A seed is meaningful wherever coins are flipped: randomized
        // sweeps, coin-driven fault plans, or seeded activation.
        let coin_driven_plan = self.fault_plan.as_ref().is_some_and(|kinds| {
            kinds.iter().any(|k| {
                matches!(
                    k,
                    FaultKind::Intermittent { .. }
                        | FaultKind::Byzantine { .. }
                        | FaultKind::PFaulty { .. }
                )
            })
        });
        if self.seed.is_some()
            && self.strategy != "randomized-sweep"
            && !coin_driven_plan
            && !self.has_seeded_activation()
        {
            return Err(Error::domain(
                "\"seed\" is only meaningful with strategy \"randomized-sweep\", a \
                 coin-driven \"fault_plan\" or a \"Seeded\" activation",
            ));
        }
        if let Some(faulty) = &self.faulty {
            if self.fault_plan.is_some() {
                return Err(Error::domain("\"faulty\" and \"fault_plan\" are mutually exclusive"));
            }
            if faulty.len() > self.f {
                return Err(Error::invalid_params(
                    self.n,
                    self.f,
                    format!("{} explicit faults exceed the budget f = {}", faulty.len(), self.f),
                ));
            }
            FaultMask::from_indices(self.n, faulty)?;
        }
        if let Some(kinds) = &self.fault_plan {
            if kinds.len() != self.n {
                return Err(Error::invalid_params(
                    self.n,
                    self.f,
                    format!(
                        "fault plan covers {} robots but the fleet has {}",
                        kinds.len(),
                        self.n
                    ),
                ));
            }
            FaultPlan::new(kinds.clone())?.check_budget(self.f)?;
        }
        if let Some(votes) = self.quorum {
            if self.fault_plan.is_none() {
                return Err(Error::domain("\"quorum\" requires an explicit \"fault_plan\""));
            }
            QuorumConfig::new(votes)?;
            if votes > self.n {
                return Err(Error::domain(format!(
                    "quorum of {votes} votes exceeds the fleet size n = {}",
                    self.n
                )));
            }
        }
        if let Some(specs) = &self.robots {
            if specs.len() != self.n {
                return Err(Error::invalid_params(
                    self.n,
                    self.f,
                    format!("robots array covers {} robots but n = {}", specs.len(), self.n),
                ));
            }
            for (i, spec) in specs.iter().enumerate() {
                if !spec.speed.is_finite() || spec.speed <= 0.0 || spec.speed > MAX_SPEED {
                    return Err(Error::domain(format!(
                        "robot {i} speed {} must be finite, positive and <= {MAX_SPEED}",
                        spec.speed
                    )));
                }
                match spec.activation {
                    Activation::Immediate => {}
                    Activation::DelayedStart(t) => {
                        if !t.is_finite() || !(0.0..=MAX_DELAY).contains(&t) {
                            return Err(Error::domain(format!(
                                "robot {i} start delay {t} must be finite, >= 0 and <= {MAX_DELAY}"
                            )));
                        }
                    }
                    Activation::Seeded { max_delay } => {
                        if !max_delay.is_finite() || !(0.0..=MAX_DELAY).contains(&max_delay) {
                            return Err(Error::domain(format!(
                                "robot {i} max_delay {max_delay} must be finite, >= 0 and <= \
                                 {MAX_DELAY}"
                            )));
                        }
                    }
                }
                if let Some(onset) = spec.fault_onset {
                    if !onset.is_finite() || onset < 0.0 {
                        return Err(Error::domain(format!(
                            "robot {i} fault onset {onset} must be finite and >= 0"
                        )));
                    }
                    match self.fault_plan.as_ref().map(|kinds| &kinds[i]) {
                        None | Some(FaultKind::Reliable) => {
                            return Err(Error::domain(format!(
                                "robot {i} has a fault onset but no fault to switch on \
                                 (needs a non-Reliable \"fault_plan\" entry)"
                            )));
                        }
                        Some(FaultKind::SpeedDegraded { .. }) => {
                            return Err(Error::domain(format!(
                                "robot {i}: a SpeedDegraded motion fault cannot switch on \
                                 mid-run; model it with \"speed\" instead"
                            )));
                        }
                        Some(_) => {}
                    }
                }
            }
        }
        Ok(())
    }
}

/// Whether a parsed JSON value looks like a versioned scenario
/// document: an object carrying both `version` and `n` keys. (A
/// recorded [`faultline_sim::RunTrace`] also has `version` but never
/// `n`; the legacy scenario form has `n` but never `version`.)
#[must_use]
pub fn is_scenario_value(value: &serde::Value) -> bool {
    match value {
        serde::Value::Object(fields) => {
            fields.iter().any(|(k, _)| k == "version") && fields.iter().any(|(k, _)| k == "n")
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"{"version": 1, "n": 3, "f": 1, "targets": [2.0, -4.5]}"#;

    #[test]
    fn parses_with_defaults() {
        let doc = ScenarioDoc::from_json(MINIMAL).unwrap();
        assert_eq!(doc.version, 1);
        assert_eq!(doc.strategy, "paper");
        assert_eq!(doc.geometry, Geometry::Line);
        assert_eq!(doc.robots, None);
        assert!(doc.robot_specs().iter().all(RobotSpec::is_legacy_default));
    }

    #[test]
    fn version_gate_rejects_missing_and_future_versions() {
        let err = ScenarioDoc::from_json(r#"{"n": 3, "f": 1, "targets": [2.0]}"#).unwrap_err();
        assert!(err.to_string().contains("version"), "got: {err}");
        let err = ScenarioDoc::from_json(r#"{"version": 2, "n": 3, "f": 1, "targets": [2.0]}"#)
            .unwrap_err();
        assert!(err.to_string().contains("unsupported scenario version 2"), "got: {err}");
        assert!(err.to_string().contains("version 1"), "diagnostic names the supported version");
    }

    #[test]
    fn unknown_fields_are_rejected_not_ignored() {
        let err = ScenarioDoc::from_json(
            r#"{"version": 1, "n": 3, "f": 1, "targets": [2.0], "tragets": []}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("tragets"), "got: {err}");
        let err = ScenarioDoc::from_json(
            r#"{"version": 1, "n": 1, "f": 0, "targets": [2.0], "robots": [{"sped": 2.0}]}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("sped"), "got: {err}");
    }

    #[test]
    fn half_line_rejects_negative_and_sub_unit_targets() {
        let doc = |targets: &str| {
            ScenarioDoc::from_json(&format!(
                r#"{{"version": 1, "n": 3, "f": 1, "geometry": "HalfLine", "targets": {targets}}}"#
            ))
        };
        assert!(doc("[2.0, 4.5]").is_ok());
        assert!(doc("[-2.0]").is_err());
        assert!(doc("[0.5]").is_err());
        // The full line admits both signs but still needs |x| >= 1.
        assert!(
            ScenarioDoc::from_json(r#"{"version": 1, "n": 3, "f": 1, "targets": [0.25]}"#).is_err()
        );
    }

    #[test]
    fn robot_spec_validation() {
        let doc = |robots: &str| {
            ScenarioDoc::from_json(&format!(
                r#"{{"version": 1, "n": 2, "f": 1, "targets": [2.0], "robots": {robots}}}"#
            ))
        };
        // Wrong arity.
        assert!(doc(r#"[{"speed": 1.0}]"#).is_err());
        // Bad speeds.
        assert!(doc(r#"[{"speed": 0.0}, {}]"#).is_err());
        assert!(doc(r#"[{"speed": -2.0}, {}]"#).is_err());
        assert!(doc(r#"[{"speed": "inf"}, {}]"#).is_err());
        assert!(doc(r#"[{"speed": 1e7}, {}]"#).is_err());
        // Bad delays.
        assert!(doc(r#"[{"activation": {"DelayedStart": -1.0}}, {}]"#).is_err());
        assert!(doc(r#"[{"activation": {"Seeded": {"max_delay": "nan"}}}, {}]"#).is_err());
        // Onset without a fault to switch on.
        assert!(doc(r#"[{"fault_onset": 3.0}, {}]"#).is_err());
        // Valid heterogeneous fleet (seed justified by Seeded activation).
        let ok = ScenarioDoc::from_json(
            r#"{"version": 1, "n": 2, "f": 1, "targets": [2.0], "seed": 5,
                "robots": [{"speed": 2.0}, {"activation": {"Seeded": {"max_delay": 1.5}}}]}"#,
        )
        .unwrap();
        assert!(ok.has_seeded_activation());
    }

    #[test]
    fn onset_requires_switchable_fault_kind() {
        let with_plan = |plan: &str| {
            ScenarioDoc::from_json(&format!(
                r#"{{"version": 1, "n": 2, "f": 1, "targets": [2.0], "fault_plan": {plan},
                    "robots": [{{"fault_onset": 3.0}}, {{}}]}}"#
            ))
        };
        assert!(with_plan(r#"["Sensor", "Reliable"]"#).is_ok());
        assert!(with_plan(r#"["Reliable", "Sensor"]"#).is_err(), "onset on a Reliable robot");
        assert!(
            with_plan(r#"[{"SpeedDegraded": {"factor": 0.5}}, "Reliable"]"#).is_err(),
            "motion faults cannot switch on"
        );
    }

    #[test]
    fn seed_meaningfulness_extends_to_seeded_activation() {
        // Legacy rule still applies...
        assert!(ScenarioDoc::from_json(
            r#"{"version": 1, "n": 3, "f": 1, "targets": [2.0], "seed": 7}"#
        )
        .is_err());
        // ...but a Seeded activation legitimizes the seed.
        assert!(ScenarioDoc::from_json(
            r#"{"version": 1, "n": 1, "f": 0, "targets": [2.0], "seed": 7,
                "robots": [{"activation": {"Seeded": {"max_delay": 2.0}}}]}"#
        )
        .is_ok());
    }

    #[test]
    fn resolved_serialization_is_canonical() {
        // Two spellings of the same scenario (defaults omitted vs
        // explicit) serialize to identical bytes.
        let implicit = ScenarioDoc::from_json(MINIMAL).unwrap();
        let explicit = ScenarioDoc::from_json(
            r#"{"version": 1, "n": 3, "f": 1, "strategy": "paper", "geometry": "Line",
                "targets": [2.0, -4.5]}"#,
        )
        .unwrap();
        assert_eq!(implicit.to_json().unwrap(), explicit.to_json().unwrap());
    }

    #[test]
    fn round_trips_bit_exact_floats() {
        let doc = ScenarioDoc::from_json(
            r#"{"version": 1, "n": 2, "f": 1,
                "targets": [1.0000000000000002, -7.1],
                "robots": [{"speed": 0.30000000000000004,
                            "activation": {"DelayedStart": 2.220446049250313e-16}},
                           {"activation": {"Seeded": {"max_delay": 0.1}}}],
                "seed": 3}"#,
        )
        .unwrap();
        let back = ScenarioDoc::from_json(&doc.to_json().unwrap()).unwrap();
        assert_eq!(doc, back);
        let specs = back.robot_specs();
        assert_eq!(specs[0].speed.to_bits(), 0.30000000000000004f64.to_bits());
        match specs[0].activation {
            Activation::DelayedStart(t) => {
                assert_eq!(t.to_bits(), 2.220446049250313e-16f64.to_bits());
            }
            _ => panic!("wrong activation"),
        }
    }

    #[test]
    fn scenario_value_discrimination() {
        let value: serde::Value = serde_json::from_str(MINIMAL).unwrap();
        assert!(is_scenario_value(&value));
        // Legacy scenario: n without version.
        let legacy: serde::Value =
            serde_json::from_str(r#"{"n": 3, "f": 1, "targets": [2.0]}"#).unwrap();
        assert!(!is_scenario_value(&legacy));
        // Trace-shaped: version without n.
        let trace: serde::Value = serde_json::from_str(r#"{"version": 1, "target": 2.0}"#).unwrap();
        assert!(!is_scenario_value(&trace));
        assert!(!is_scenario_value(&serde::Value::Null));
    }
}
