//! Seeding the free-schedule optimizer from a scenario document.
//!
//! [`FreeSchedule`] is unit-speed by construction (each leg's duration
//! equals its turning-point sum), so only unit-speed documents lower
//! into one; activation delays survive the lowering as additions to
//! each robot's `first_turn_time`, which the optimizer is free to
//! shrink back toward the geometric seed.

use faultline_core::ProportionalSchedule;
use faultline_core::{ratio::optimal_beta, Error, FreeRobot, FreeSchedule, Params, Result};

use crate::document::ScenarioDoc;

/// Types that can be seeded from a scenario document.
pub trait FromScenario: Sized {
    /// Builds a starting point for optimization from the document.
    ///
    /// # Errors
    ///
    /// Implementations reject documents outside their model.
    fn from_scenario(doc: &ScenarioDoc, explicit_turns: usize) -> Result<Self>;
}

impl FromScenario for FreeSchedule {
    /// Lowers the document's strategy into a free schedule with
    /// `explicit_turns` turning points per robot: `"paper"` uses the
    /// closed-form optimal cone, `"fixed-beta"` the document's `beta`.
    /// Activation delays shift each robot's launch time.
    fn from_scenario(doc: &ScenarioDoc, explicit_turns: usize) -> Result<Self> {
        doc.validate()?;
        let params = Params::new(doc.n, doc.f)?;
        if let Some(spec) = doc.robot_specs().iter().find(|s| s.speed.to_bits() != 1.0f64.to_bits())
        {
            return Err(Error::domain(format!(
                "free schedules are unit-speed by construction; robot speed {} cannot \
                 be lowered",
                spec.speed
            )));
        }
        let beta = match doc.strategy.as_str() {
            "paper" => optimal_beta(params)?,
            "fixed-beta" => doc.beta.ok_or_else(|| {
                Error::domain("strategy \"fixed-beta\" requires a \"beta\" field")
            })?,
            other => {
                return Err(Error::domain(format!(
                    "only \"paper\" and \"fixed-beta\" scenarios lower into a free \
                     schedule, not \"{other}\""
                )))
            }
        };
        let schedule = ProportionalSchedule::new(doc.n, beta)?;
        let seeded = FreeSchedule::from_proportional(&schedule, explicit_turns)?;
        let delays = doc.activation_delays();
        let robots = seeded
            .robots()
            .iter()
            .zip(&delays)
            .map(|(robot, &delay)| {
                FreeRobot::new(robot.side, robot.turns.clone(), robot.first_turn_time + delay)
            })
            .collect::<Result<Vec<_>>>()?;
        FreeSchedule::new(robots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(json: &str) -> ScenarioDoc {
        ScenarioDoc::from_json(json).unwrap()
    }

    #[test]
    fn paper_scenario_lowers_to_the_proportional_seed() {
        let d = doc(r#"{"version": 1, "n": 3, "f": 1, "targets": [4.0]}"#);
        let fs = FreeSchedule::from_scenario(&d, 6).unwrap();
        let params = Params::new(3, 1).unwrap();
        let beta = optimal_beta(params).unwrap();
        let reference =
            FreeSchedule::from_proportional(&ProportionalSchedule::new(3, beta).unwrap(), 6)
                .unwrap();
        assert_eq!(fs.n(), 3);
        for (a, b) in fs.robots().iter().zip(reference.robots()) {
            assert_eq!(a.turns, b.turns, "no delays: the seed is untouched");
            assert_eq!(a.first_turn_time, b.first_turn_time);
        }
    }

    #[test]
    fn activation_delays_shift_launch_times() {
        let d = doc(r#"{"version": 1, "n": 2, "f": 1, "targets": [4.0],
                "robots": [{"activation": {"DelayedStart": 1.25}}, {}]}"#);
        let fs = FreeSchedule::from_scenario(&d, 4).unwrap();
        let base = doc(r#"{"version": 1, "n": 2, "f": 1, "targets": [4.0]}"#);
        let reference = FreeSchedule::from_scenario(&base, 4).unwrap();
        assert_eq!(fs.robots()[0].first_turn_time, reference.robots()[0].first_turn_time + 1.25);
        assert_eq!(fs.robots()[1].first_turn_time, reference.robots()[1].first_turn_time);
    }

    #[test]
    fn non_unit_speeds_and_foreign_strategies_are_rejected() {
        let fast = doc(r#"{"version": 1, "n": 2, "f": 1, "targets": [4.0],
                "robots": [{"speed": 2.0}, {}]}"#);
        assert!(FreeSchedule::from_scenario(&fast, 4).is_err());
        let sweep = doc(r#"{"version": 1, "n": 2, "f": 1, "strategy": "randomized-sweep",
                "targets": [4.0]}"#);
        assert!(FreeSchedule::from_scenario(&sweep, 4).is_err());
    }

    #[test]
    fn fixed_beta_uses_the_document_beta() {
        let d = doc(r#"{"version": 1, "n": 3, "f": 1, "strategy": "fixed-beta", "beta": 2.5,
                "targets": [4.0]}"#);
        let fs = FreeSchedule::from_scenario(&d, 4).unwrap();
        let reference =
            FreeSchedule::from_proportional(&ProportionalSchedule::new(3, 2.5).unwrap(), 4)
                .unwrap();
        assert_eq!(fs.robots()[0].turns, reference.robots()[0].turns);
    }
}
