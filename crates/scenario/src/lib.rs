//! # faultline-scenario
//!
//! A declarative, versioned scenario DSL generalizing the legacy
//! [`faultline_analysis::Scenario`] form along three axes:
//!
//! * **Heterogeneous fleets** — per-robot `speed`, `activation`
//!   (immediate, delayed, or seeded-random start) and `fault_onset`
//!   schedules over the existing fault taxonomy.
//! * **Geometry** — the paper's full line or the one-sided half-line
//!   (`[1, xmax]` only), threading [`faultline_core::Geometry`]
//!   through target validation and downstream analysis.
//! * **Versioning** — an explicit `version` field (this build reads
//!   [`SCENARIO_VERSION`]); future-versioned documents fail with a
//!   typed diagnostic, never a panic, and every `f64` round-trips
//!   bit-exactly through [`faultline_core::json_float`].
//!
//! Documents whose fleet is exactly the paper's delegate to the legacy
//! runner and reproduce its output byte-for-byte — the
//! `unit-speed-scenario-equivalence` conformance oracle pins the
//! generalized path to the legacy one across a generated corpus.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// `!(x > limit)` deliberately rejects NaN where `x <= limit` would not.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod document;
pub mod optimize;
pub mod run;

pub use document::{
    is_scenario_value, Activation, RobotSpec, ScenarioDoc, MAX_DELAY, MAX_SPEED, SCENARIO_VERSION,
};
pub use optimize::FromScenario;
pub use run::{run_scenario_json, unsupported_document_error};
