//! Executing scenario documents.
//!
//! A document whose fleet is exactly the paper's (unit speeds,
//! immediate activation, no onsets, full line) delegates to the legacy
//! [`faultline_analysis::Scenario`] runner and reproduces its output
//! byte-for-byte. Anything else takes the general path: plans are
//! materialized in *plan time* and retimed into wall clock per robot
//! (`t ↦ delay + t / speed`), then fed through the same three
//! simulation paths the legacy runner uses.

use faultline_analysis::{resolve_strategy, Scenario, ScenarioResult};
use faultline_core::{
    Error, Geometry, Params, PiecewiseTrajectory, Result, SpaceTime, TrajectoryPlan,
};
use faultline_sim::engine::SimConfig;
use faultline_sim::{
    worst_case_outcome, FaultMask, FaultPlan, QuorumConfig, SearchOutcome, Simulation, Target,
};
use faultline_strategies::{RandomizedStrategy, RandomizedSweepStrategy, Strategy};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::document::{Activation, RobotSpec, ScenarioDoc};

/// Seed salt separating activation-delay coins from the simulator's
/// sensor-miss and Byzantine-lie streams: reusing a seed across the
/// three must never correlate their draws.
const ACTIVATION_STREAM: u64 = 0x6A09_E667_F3BC_C909;

/// Deterministic coin in `[0, 1)` for seeded activation delays, keyed
/// by `(seed, robot)` (splitmix64 finalizer over the xor-combined key,
/// the same construction as the simulator's fault coins but on its own
/// stream).
fn activation_coin(seed: u64, robot: usize) -> f64 {
    let mut z = seed ^ ACTIVATION_STREAM ^ (robot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ((z >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// Maps a unit-speed plan-time trajectory into wall clock: every
/// waypoint `(x, t)` becomes `(x, delay + t / speed)`, with a parked
/// origin waypoint prepended for a positive delay. The all-defaults
/// case returns the input unchanged (bitwise — delegation depends on
/// it).
fn retime(t: &PiecewiseTrajectory, speed: f64, delay: f64) -> Result<PiecewiseTrajectory> {
    if speed.to_bits() == 1.0f64.to_bits() && delay == 0.0 {
        return Ok(t.clone());
    }
    let mut waypoints = Vec::with_capacity(t.waypoints().len() + 1);
    if delay > 0.0 {
        waypoints.push(SpaceTime { x: 0.0, t: 0.0 });
    }
    for w in t.waypoints() {
        waypoints.push(SpaceTime { x: w.x, t: delay + w.t / speed });
    }
    PiecewiseTrajectory::with_speed_limit(waypoints, speed.max(1.0))
}

fn result_from_outcome(target: f64, outcome: &SearchOutcome) -> ScenarioResult {
    ScenarioResult {
        target,
        detection_time: outcome.detection.as_ref().map(|d| d.time),
        ratio: outcome.ratio(),
        detected_by: outcome.detection.as_ref().map(|d| d.robot.0),
        distinct_visitors: outcome.distinct_visitors(),
        confirmed_position: outcome.confirmed_position,
        false_claims: outcome.claims.iter().filter(|c| !c.truthful).count(),
    }
}

impl ScenarioDoc {
    /// The legacy scenario this document is equivalent to, when its
    /// fleet is exactly the paper's: full-line geometry and every
    /// robot bitwise unit-speed, immediately active, with no fault
    /// onset. `None` as soon as any generalized feature is engaged.
    #[must_use]
    pub fn as_legacy(&self) -> Option<Scenario> {
        if self.geometry != Geometry::Line {
            return None;
        }
        if let Some(specs) = &self.robots {
            if !specs.iter().all(RobotSpec::is_legacy_default) {
                return None;
            }
        }
        Some(Scenario {
            n: self.n,
            f: self.f,
            strategy: self.strategy.clone(),
            beta: self.beta,
            targets: self.targets.clone(),
            faulty: self.faulty.clone(),
            fault_plan: self.fault_plan.clone(),
            quorum: self.quorum,
            seed: self.seed,
        })
    }

    /// Resolved activation delay per robot. Seeded delays draw from
    /// the scenario seed (default 0) on the activation coin stream, so
    /// the same document always resolves to the same fleet.
    #[must_use]
    pub fn activation_delays(&self) -> Vec<f64> {
        let seed = self.seed.unwrap_or(0);
        self.robot_specs()
            .iter()
            .enumerate()
            .map(|(i, spec)| match spec.activation {
                Activation::Immediate => 0.0,
                Activation::DelayedStart(t) => t,
                Activation::Seeded { max_delay } => activation_coin(seed, i) * max_delay,
            })
            .collect()
    }

    /// Generates the trajectory plans and a sufficient plan-time
    /// horizon for targets up to `xmax` (the same resolution logic as
    /// the legacy runner, including the seeded randomized sweep).
    fn plans_and_horizon(
        &self,
        params: Params,
        xmax: f64,
    ) -> Result<(Vec<Box<dyn TrajectoryPlan>>, f64)> {
        let reach = xmax * 1.01 + 1.0;
        if self.strategy == "randomized-sweep" {
            let sweep = RandomizedSweepStrategy::kao_optimal();
            let mut rng = StdRng::seed_from_u64(self.seed.unwrap_or(0));
            let plans = sweep.sample_plans(params, &mut rng)?;
            let horizon = sweep.horizon_hint(params, reach);
            return Ok((plans, horizon));
        }
        let strategy: Box<dyn Strategy> = resolve_strategy(&self.strategy, self.beta)?;
        let plans = strategy.plans(params)?;
        let horizon = strategy.horizon_hint(params, reach);
        Ok((plans, horizon))
    }

    /// Materializes the document's fleet in wall clock: plans are
    /// resolved, materialized to a horizon stretched per robot by its
    /// speed, and retimed by `(speed, delay)`. Returns the
    /// trajectories and the wall-clock horizon (plan horizon plus the
    /// largest activation delay).
    ///
    /// Slow robots genuinely cover less ground within that horizon —
    /// a target they alone could confirm may go undetected, and the
    /// result reports that honestly instead of stretching the clock.
    ///
    /// # Errors
    ///
    /// Propagates validation, strategy and trajectory failures.
    pub fn materialize_fleet(&self) -> Result<(Vec<PiecewiseTrajectory>, f64)> {
        self.validate()?;
        let params = Params::new(self.n, self.f)?;
        let xmax = self.targets.iter().map(|x| x.abs()).fold(1.0f64, f64::max);
        let (plans, base_horizon) = self.plans_and_horizon(params, xmax)?;
        let specs = self.robot_specs();
        let delays = self.activation_delays();
        let wall_horizon = base_horizon + delays.iter().fold(0.0f64, |a, &b| a.max(b));
        let trajectories = plans
            .iter()
            .zip(&specs)
            .zip(&delays)
            .map(|((plan, spec), &delay)| {
                // A speed-s robot consumes plan time s times faster
                // than the wall clock, so its plan must extend that
                // much further to fill the shared horizon.
                let trajectory = plan.materialize(wall_horizon * spec.speed)?;
                retime(&trajectory, spec.speed, delay)
            })
            .collect::<Result<Vec<_>>>()?;
        Ok((trajectories, wall_horizon))
    }

    /// Runs the scenario. Documents expressible in the legacy form
    /// delegate to [`Scenario::run`] and reproduce its output
    /// byte-for-byte; generalized documents take
    /// [`ScenarioDoc::run_general`].
    ///
    /// # Errors
    ///
    /// Propagates validation, strategy, plan and simulation failures.
    pub fn run(&self) -> Result<Vec<ScenarioResult>> {
        self.validate()?;
        if let Some(legacy) = self.as_legacy() {
            return legacy.run();
        }
        self.run_general()
    }

    /// Runs the scenario through the generalized path unconditionally
    /// (heterogeneous fleet machinery even for all-default documents;
    /// the `unit-speed-scenario-equivalence` conformance oracle pins
    /// this path to the legacy runner bit-for-bit).
    ///
    /// # Errors
    ///
    /// Propagates validation, strategy, plan and simulation failures.
    pub fn run_general(&self) -> Result<Vec<ScenarioResult>> {
        self.validate()?;
        let (trajectories, _) = self.materialize_fleet()?;
        let specs = self.robot_specs();
        let onsets: Vec<Option<f64>> = specs.iter().map(|s| s.fault_onset).collect();
        let any_onset = onsets.iter().any(Option::is_some);
        let seed = self.seed.unwrap_or(0);
        faultline_core::par_map(&self.targets, |&x| {
            let target = Target::new(x)?;
            let outcome: SearchOutcome = if let Some(kinds) = &self.fault_plan {
                let plan = FaultPlan::new(kinds.clone())?;
                let quorum = self.quorum.map(QuorumConfig::new).transpose()?;
                if any_onset {
                    Simulation::with_onsets(
                        trajectories.clone(),
                        target,
                        &plan,
                        &onsets,
                        seed,
                        SimConfig::default(),
                        quorum,
                    )?
                    .run()
                } else {
                    Simulation::with_quorum(
                        trajectories.clone(),
                        target,
                        &plan,
                        seed,
                        SimConfig::default(),
                        quorum,
                    )?
                    .run()
                }
            } else {
                match &self.faulty {
                    Some(faulty) => {
                        let mask = FaultMask::from_indices(self.n, faulty)?;
                        Simulation::new(trajectories.clone(), target, &mask, SimConfig::default())?
                            .run()
                    }
                    None => worst_case_outcome(
                        trajectories.clone(),
                        target,
                        self.f,
                        SimConfig::default(),
                    )?,
                }
            };
            Ok(result_from_outcome(x, &outcome))
        })
        .into_iter()
        .collect()
    }
}

/// Runs a JSON string that must be a versioned scenario document (the
/// CLI's `faultline scenario run` path; [`crate::is_scenario_value`]
/// decides whether a given document should come here at all).
///
/// # Errors
///
/// Propagates parse, validation and simulation failures.
pub fn run_scenario_json(json: &str) -> Result<Vec<ScenarioResult>> {
    ScenarioDoc::from_json(json)?.run()
}

/// Convenience: the parse error a caller should surface when a
/// document is neither a scenario, a legacy scenario, nor a trace.
#[must_use]
pub fn unsupported_document_error() -> Error {
    Error::domain(
        "document is neither a versioned scenario, a legacy scenario, nor a recorded trace",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_analysis::scenario::results_to_json;

    fn doc(json: &str) -> ScenarioDoc {
        ScenarioDoc::from_json(json).unwrap()
    }

    #[test]
    fn unit_speed_document_reproduces_legacy_bytes() {
        // The canonical Byzantine quorum regime, spelled as a v1
        // document and as the legacy form; outputs must be identical
        // bytes, not merely approximately equal.
        let v1 = doc(r#"{"version": 1, "n": 5, "f": 2, "targets": [2.0, -4.5],
            "fault_plan": ["Reliable", "Reliable", "Reliable",
                           {"Byzantine": {"lie_rate": 0.75}},
                           {"Byzantine": {"lie_rate": 0.75}}],
            "quorum": 3, "seed": 9}"#);
        let legacy = Scenario::from_json(
            r#"{"n": 5, "f": 2, "targets": [2.0, -4.5],
                "fault_plan": ["Reliable", "Reliable", "Reliable",
                               {"Byzantine": {"lie_rate": 0.75}},
                               {"Byzantine": {"lie_rate": 0.75}}],
                "quorum": 3, "seed": 9}"#,
        )
        .unwrap();
        assert_eq!(v1.as_legacy(), Some(legacy.clone()));
        let via_doc = results_to_json(&v1.run().unwrap()).unwrap();
        let via_legacy = results_to_json(&legacy.run().unwrap()).unwrap();
        assert_eq!(via_doc, via_legacy);
        // The general path agrees bitwise too (the conformance oracle
        // pins this across the generated instance corpus).
        let via_general = results_to_json(&v1.run_general().unwrap()).unwrap();
        assert_eq!(via_general, via_legacy);
    }

    #[test]
    fn explicit_default_robots_still_delegate() {
        let v1 = doc(r#"{"version": 1, "n": 3, "f": 1, "targets": [2.0],
            "robots": [{"speed": 1.0}, {}, {"activation": "Immediate"}]}"#);
        assert!(v1.as_legacy().is_some(), "all-default specs are the legacy fleet");
    }

    #[test]
    fn half_line_document_runs_one_sided() {
        let v1 =
            doc(r#"{"version": 1, "n": 3, "f": 1, "geometry": "HalfLine", "targets": [2.0, 4.5]}"#);
        assert!(v1.as_legacy().is_none(), "half-line never takes the legacy path");
        let results = v1.run().unwrap();
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.detection_time.is_some(), "target {}", r.target);
            assert!(r.ratio.is_finite());
        }
    }

    #[test]
    fn fast_robots_detect_no_later() {
        let base = r#"{"version": 1, "n": 3, "f": 1, "targets": [6.0]}"#;
        let slowdoc = doc(base);
        let fastdoc = doc(r#"{"version": 1, "n": 3, "f": 1, "targets": [6.0],
                "robots": [{"speed": 2.0}, {"speed": 2.0}, {"speed": 2.0}]}"#);
        let slow = slowdoc.run().unwrap();
        let fast = fastdoc.run().unwrap();
        let (ts, tf) = (slow[0].detection_time.unwrap(), fast[0].detection_time.unwrap());
        assert!(
            tf <= ts / 2.0 + 1e-9,
            "doubling every speed halves the detection time: {tf} vs {ts}"
        );
    }

    #[test]
    fn uniform_delay_shifts_detection_by_exactly_that_delay() {
        let base = doc(r#"{"version": 1, "n": 3, "f": 1, "targets": [4.0]}"#);
        let delayed = doc(r#"{"version": 1, "n": 3, "f": 1, "targets": [4.0],
                "robots": [{"activation": {"DelayedStart": 2.5}},
                           {"activation": {"DelayedStart": 2.5}},
                           {"activation": {"DelayedStart": 2.5}}]}"#);
        let t0 = base.run().unwrap()[0].detection_time.unwrap();
        let t1 = delayed.run().unwrap()[0].detection_time.unwrap();
        assert!((t1 - (t0 + 2.5)).abs() <= 1e-9, "{t1} vs {t0} + 2.5");
    }

    #[test]
    fn seeded_activation_replays_and_varies_with_seed() {
        let with_seed = |seed: u64| {
            doc(&format!(
                r#"{{"version": 1, "n": 3, "f": 1, "targets": [4.0], "seed": {seed},
                    "robots": [{{"activation": {{"Seeded": {{"max_delay": 3.0}}}}}},
                               {{"activation": {{"Seeded": {{"max_delay": 3.0}}}}}},
                               {{"activation": {{"Seeded": {{"max_delay": 3.0}}}}}}]}}"#
            ))
        };
        let a = with_seed(1).run().unwrap();
        assert_eq!(with_seed(1).run().unwrap(), a, "same seed replays bit-for-bit");
        let delays_1 = with_seed(1).activation_delays();
        let delays_2 = with_seed(2).activation_delays();
        assert_ne!(delays_1, delays_2, "different seeds draw different delays");
        assert!(delays_1.iter().all(|&d| (0.0..3.0).contains(&d)));
        // Distinct robots draw distinct coins under one seed.
        assert_ne!(delays_1[0], delays_1[1]);
    }

    #[test]
    fn onset_documents_route_through_with_onsets() {
        // Onset 0 means faulty from the first instant: identical to
        // the always-on plan. An onset past the horizon means the
        // fault never engages: identical to an all-Reliable plan.
        // Both equalities are plan-geometry independent.
        let onset = |t: f64| {
            doc(&format!(
                r#"{{"version": 1, "n": 2, "f": 1, "targets": [2.0, -4.5],
                    "fault_plan": ["Sensor", "Reliable"],
                    "robots": [{{"fault_onset": {t:?}}}, {{}}]}}"#
            ))
        };
        let always = doc(r#"{"version": 1, "n": 2, "f": 1, "targets": [2.0, -4.5],
                "fault_plan": ["Sensor", "Reliable"]}"#);
        let healthy = doc(r#"{"version": 1, "n": 2, "f": 1, "targets": [2.0, -4.5],
                "fault_plan": ["Reliable", "Reliable"]}"#);
        assert_eq!(onset(0.0).run().unwrap(), always.run().unwrap(), "onset 0 = always faulty");
        assert_eq!(
            onset(1.0e5).run().unwrap(),
            healthy.run().unwrap(),
            "onset past the horizon = never faulty"
        );
        // And switching the fault on mid-run changes *something*
        // relative to at least one of the extremes.
        let mid = onset(3.0).run().unwrap();
        assert!(
            mid != always.run().unwrap() || mid != healthy.run().unwrap(),
            "a mid-run onset is one of the two regimes per target"
        );
    }

    #[test]
    fn speed_changes_the_competitive_picture_end_to_end() {
        // One fast, one slow robot on the half-line with an explicit
        // fault: results stay deterministic and meaningful.
        let v1 = doc(r#"{"version": 1, "n": 2, "f": 1, "geometry": "HalfLine",
                "targets": [3.0], "faulty": [1],
                "robots": [{"speed": 2.0}, {"speed": 0.5}]}"#);
        let results = v1.run().unwrap();
        assert_eq!(v1.run().unwrap(), results, "deterministic");
        assert!(results[0].detection_time.is_some());
        assert_ne!(results[0].detected_by, Some(1), "robot 1 is faulty");
    }

    #[test]
    fn materialize_fleet_exposes_the_wall_clock_fleet() {
        let v1 = doc(r#"{"version": 1, "n": 2, "f": 1, "targets": [4.0],
                "robots": [{"speed": 2.0}, {"activation": {"DelayedStart": 1.5}}]}"#);
        let (fleet, horizon) = v1.materialize_fleet().unwrap();
        assert_eq!(fleet.len(), 2);
        assert!(horizon > 1.5);
        // The delayed robot is parked at the origin until its start.
        assert_eq!(fleet[1].position_at(1.0), Some(0.0));
        // The fast robot runs the same plan at twice the clock rate:
        // its position at t is the unit fleet's position at 2t.
        let base = doc(r#"{"version": 1, "n": 2, "f": 1, "targets": [4.0]}"#);
        let (unit_fleet, _) = base.materialize_fleet().unwrap();
        for t in [0.5, 1.0, 2.0, 3.5] {
            let fast = fleet[0].position_at(t).unwrap();
            let unit = unit_fleet[0].position_at(2.0 * t).unwrap();
            assert!((fast - unit).abs() <= 1e-9, "t = {t}: {fast} vs {unit}");
        }
    }
}
