//! Satellite property test: dominance-pruned exploration is lossless.
//!
//! On every Table 1 pair with `n <= 5` the pruned frontier and the
//! exhaustive differential baseline must report the same worst-case
//! adversary value bit-for-bit while the pruned run visits strictly
//! fewer states — across the whole `xmax` range, not just the
//! committed coverage artifact's window. The deterministic pin below
//! freezes the exact state counts at the artifact's `xmax = 25` so
//! any change to canonicalization or pruning shows up in review.

use faultline_explore::{explore_pair, ExploreConfig};
use proptest::prelude::*;

/// The Table 1 pairs with `n <= 5`.
const SMALL_PAIRS: [(usize, usize); 8] =
    [(2, 1), (3, 1), (3, 2), (4, 2), (4, 3), (5, 2), (5, 3), (5, 4)];

#[test]
fn pinned_state_counts_at_the_artifact_window() {
    // (class_states, pruned explored, exhaustive explored, intervals)
    // at xmax = 25 — the numbers behind out/explore_coverage.csv.
    let pins = [
        ((2, 1), (36, 10, 36, 12)),
        ((3, 1), (40, 7, 40, 10)),
        ((3, 2), (126, 14, 126, 18)),
        ((4, 2), (154, 10, 154, 14)),
        ((4, 3), (345, 20, 345, 23)),
        ((5, 2), (192, 9, 192, 12)),
        ((5, 3), (546, 17, 546, 21)),
        ((5, 4), (837, 24, 837, 27)),
    ];
    for ((n, f), (class_states, pruned_explored, exhaustive_explored, intervals)) in pins {
        let pruned = explore_pair(n, f, 25.0, &ExploreConfig::default()).unwrap();
        let exhaustive =
            explore_pair(n, f, 25.0, &ExploreConfig { exhaustive: true, ..Default::default() })
                .unwrap();
        assert_eq!(
            (pruned.class_states, pruned.explored, exhaustive.explored, pruned.intervals),
            (class_states, pruned_explored, exhaustive_explored, intervals),
            "(n = {n}, f = {f}): state accounting drifted"
        );
        assert_eq!(exhaustive.pruned_dominance, 0);
        assert_eq!(pruned.pruned_dominance, class_states - pruned_explored);
        assert!(
            pruned.raw_cut_fraction() >= 0.30,
            "(n = {n}, f = {f}): acceptance floor of 30% raw-state cut"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pruning_is_lossless_across_windows(
        pair_index in 0usize..SMALL_PAIRS.len(),
        xmax in 5.0f64..30.0,
    ) {
        let (n, f) = SMALL_PAIRS[pair_index];
        let pruned = explore_pair(n, f, xmax, &ExploreConfig::default()).unwrap();
        let exhaustive =
            explore_pair(n, f, xmax, &ExploreConfig { exhaustive: true, ..Default::default() })
                .unwrap();
        prop_assert_eq!(
            pruned.worst.value.to_bits(),
            exhaustive.worst.value.to_bits(),
            "(n = {}, f = {}, xmax = {}): pruning changed the worst value",
            n, f, xmax
        );
        prop_assert_eq!(pruned.worst.target.to_bits(), exhaustive.worst.target.to_bits());
        prop_assert!(pruned.matches_exact && exhaustive.matches_exact);
        prop_assert!(
            pruned.explored < exhaustive.explored,
            "(n = {}, f = {}): pruned {} vs exhaustive {}",
            n, f, pruned.explored, exhaustive.explored
        );
        // The certified enclosure brackets the value in both modes and
        // is identical bit-for-bit (pruning never drops the extremal
        // enclosure contributions).
        prop_assert!(pruned.worst.enclosure_lo <= pruned.worst.value);
        prop_assert!(pruned.worst.value <= pruned.worst.enclosure_hi);
        prop_assert_eq!(
            pruned.worst.enclosure_lo.to_bits(),
            exhaustive.worst.enclosure_lo.to_bits()
        );
        prop_assert_eq!(
            pruned.worst.enclosure_hi.to_bits(),
            exhaustive.worst.enclosure_hi.to_bits()
        );
        // Accounting identities: full coverage, no subsampling.
        prop_assert_eq!(pruned.explored + pruned.pruned_dominance, pruned.class_states);
        prop_assert_eq!(pruned.subsampled, 0);
    }
}
