//! # faultline-explore
//!
//! Systematic exploration of the adversary's `(fault mask × target
//! window)` decision space for *Search on a Line with Faulty Robots*
//! (PODC 2016), replacing budgeted enumeration and seeded subsampling
//! with a canonical frontier whose coverage is always 100% and whose
//! cuts are certified:
//!
//! * **Canonical equivalence classes** — masks identical up to
//!   robot-index symmetry, and adversary choices inducing
//!   bit-identical reliable `WindowCover`s, collapse to one
//!   representative before exploration.
//! * **Dominance pruning** — subset dominance (fewer faults never
//!   hurt the searchers) plus a certified branch-and-bound over
//!   outward-rounded ratio enclosures cut states that provably cannot
//!   beat an already-explored branch; the reported worst value stays
//!   bit-identical to [`faultline_analysis::exact_supremum`].
//! * **Coverage accounting** — every run reports "explored N of M
//!   equivalence classes, pruned K by dominance, subsampled 0" as a
//!   versioned JSON/CSV [`ExploreReport`]; budget overflows are hard
//!   errors, never silent subsamples.
//! * **Deterministic parallelism** — partitioned evaluation over
//!   `faultline_core::par_map_with` with serial frontier merging:
//!   reports are byte-identical across runs and `FAULTLINE_THREADS`
//!   settings.
//!
//! The engine shares its critical-point candidates and interval
//! arithmetic with `faultline_analysis::exact`, so the exhaustive
//! baseline (`ExploreConfig::exhaustive`), the pruned frontier, and
//! the independent scan all agree bit-for-bit, and the reported
//! `[enclosure_lo, enclosure_hi]` brackets the true supremum.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// `!(x > limit)` deliberately rejects NaN where `x <= limit` would not.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod engine;
pub mod report;

pub use engine::{explore_fleet, explore_pair, ExploreConfig, DEFAULT_BUDGET};
pub use report::{ExploreReport, WorstCase, REPORT_VERSION};
