//! The exploration engine: canonical frontier, dominance pruning, and
//! partitioned parallel evaluation.
//!
//! # State space
//!
//! An adversary state is a pair `(fault mask, target interval)`: which
//! robots fail and which cell of the critical-point partition the
//! target sits in (the in-cell position is resolved exactly by the
//! critical-point argument — endpoints plus pairwise crossings). The
//! engine canonicalizes masks two ways before exploring:
//!
//! 1. **Robot symmetry** — robots with bitwise-identical induced
//!    affine contributions (same visit-time affine in every interval
//!    of both window sides) are interchangeable, so masks are reduced
//!    to per-group fault counts.
//! 2. **Cover collapse** — classes inducing bit-identical reliable
//!    [`faultline_core::exact::AttributedCover`]s merge (faulting a
//!    robot that never enters the window is the empty mask).
//!
//! # Dominance pruning
//!
//! Two certified cuts, both bitwise-lossless for the reported worst
//! value:
//!
//! * **Subset dominance** — a class with fewer than `f` faults is
//!   dominated by any superset class (more faults can only remove
//!   visit times from the reliable minimum), so only exactly-`f`
//!   classes are evaluated.
//! * **Branch and bound** — each remaining state gets a cheap sound
//!   upper bound `min_row max_col rhi` from the outward-rounded ratio
//!   matrices; states whose bound does not exceed the certified
//!   enclosure *lower* bound of the best-looking state are pruned.
//!   Because the threshold is a certified lower bound (≤ the f64
//!   value) the pruned states provably cannot change the maximum.
//!
//! # Determinism
//!
//! Four phases: (A) per-interval candidate/matrix builds in parallel,
//! order-preserving; (B) serial frontier and class assembly; (C)
//! serial evaluation of the single best-bound state; (D) parallel
//! evaluation of the surviving states with a serial merge in canonical
//! order. No randomness anywhere — reports are byte-identical across
//! runs and `FAULTLINE_THREADS` settings, and a budget overflow is a
//! hard error rather than a silent subsample.

use std::collections::{BTreeMap, VecDeque};

use faultline_analysis::exact::push_crossings;
use faultline_analysis::exact_supremum;
use faultline_core::coverage::prefer_argmax;
use faultline_core::exact::{attributed_first_visit_cover, mirrored, Affine};
use faultline_core::{
    par_map_with, Algorithm, Error, Fleet, Interval, ParallelConfig, Params, Result,
};

use crate::report::{ExploreReport, WorstCase, REPORT_VERSION};

/// Configuration of an exploration run.
#[derive(Debug, Clone, Default)]
pub struct ExploreConfig {
    /// Maximum number of equivalence-class states to evaluate; an
    /// overflow is a hard error, never a subsample. `None` = default.
    pub budget: Option<usize>,
    /// Recorded in the report for provenance; the engine is
    /// deterministic and never draws from it.
    pub seed: u64,
    /// Disables dominance pruning when `true` — the exhaustive
    /// differential baseline behind the CLI's `--exhaustive` flag.
    pub exhaustive: bool,
    /// Thread-pool configuration for the parallel phases.
    pub parallel: ParallelConfig,
}

/// Default evaluation budget, matching the legacy explorer's mask
/// budget.
pub const DEFAULT_BUDGET: usize = 1 << 14;

impl ExploreConfig {
    fn budget(&self) -> usize {
        self.budget.unwrap_or(DEFAULT_BUDGET)
    }
}

/// Precomputed evaluation tables for one target interval of one side.
struct IntervalTable {
    /// `+1.0` for the positive side, `-1.0` for the mirrored side.
    sign: f64,
    /// Robot owning each affine row (at most one row per robot).
    rows: Vec<u32>,
    /// Point candidates in side coordinates, enumerated exactly as the
    /// exact scan does (interval lower limit; plus upper limit and
    /// pairwise crossings inside the window).
    points: Vec<f64>,
    /// `ratio[r][c]`: the f64 ratio of row `r` at point `c`, computed
    /// in the scan engine's operation order.
    ratio: Vec<Vec<f64>>,
    /// Outward-rounded lower bounds of `ratio[r][c]`.
    rlo: Vec<Vec<f64>>,
    /// Outward-rounded upper bounds of `ratio[r][c]`.
    rhi: Vec<Vec<f64>>,
    /// Upper bounds of each row's ratio over the certified crossing
    /// ranges (`range_hi[r][q]`): covers the true breakpoints that f64
    /// point candidates can miss by an ulp.
    range_hi: Vec<Vec<f64>>,
    /// Per-row maximum over every point and range upper bound.
    rowmax: Vec<f64>,
}

/// Serial description of a table build job (Phase A input).
struct TableJob {
    sign: f64,
    lo: f64,
    hi: f64,
    is_beyond: bool,
    rows: Vec<(u32, Affine)>,
}

fn build_table(job: &TableJob) -> Result<IntervalTable> {
    let affines: Vec<Affine> = job.rows.iter().map(|&(_, a)| a).collect();
    let mut points = vec![job.lo];
    if !job.is_beyond {
        points.push(job.hi);
        push_crossings(&affines, job.lo, job.hi, &mut points);
    }
    // Certified ranges around the true crossings (upper bounds only;
    // mirrors the range logic of `exact_supremum_enclosed`).
    let mut ranges: Vec<Interval> = Vec::new();
    if !job.is_beyond {
        for (i, a) in affines.iter().enumerate() {
            for b in &affines[i + 1..] {
                if a.crossing(b).is_none() {
                    continue;
                }
                let xs = match a.crossing_enclosure(b) {
                    Some(xs) if xs.is_positive() => xs,
                    // Degenerate slope-difference enclosure: the whole
                    // interval is always a sound fallback.
                    _ => Interval::new(job.lo, job.hi)?,
                };
                if !(xs.hi() > job.lo && xs.lo() < job.hi) {
                    continue;
                }
                ranges.push(Interval::new(xs.lo().max(job.lo), xs.hi().min(job.hi))?);
            }
        }
    }
    let mut ratio = Vec::with_capacity(affines.len());
    let mut rlo = Vec::with_capacity(affines.len());
    let mut rhi = Vec::with_capacity(affines.len());
    let mut range_hi = Vec::with_capacity(affines.len());
    let mut rowmax = Vec::with_capacity(affines.len());
    for a in &affines {
        let mut rr = Vec::with_capacity(points.len());
        let mut rl = Vec::with_capacity(points.len());
        let mut rh = Vec::with_capacity(points.len());
        for &x in &points {
            // Same ops as the exact scan: eval, then one division.
            rr.push(a.eval(x) / x);
            let enc = a.ratio_enclosure(x)?;
            rl.push(enc.lo());
            rh.push(enc.hi());
        }
        let mut rq = Vec::with_capacity(ranges.len());
        for &xs in &ranges {
            rq.push(a.ratio_enclosure_over(xs)?.hi());
        }
        let mut rm = f64::NEG_INFINITY;
        for &v in rh.iter().chain(rq.iter()) {
            rm = rm.max(v);
        }
        ratio.push(rr);
        rlo.push(rl);
        rhi.push(rh);
        range_hi.push(rq);
        rowmax.push(rm);
    }
    Ok(IntervalTable {
        sign: job.sign,
        rows: job.rows.iter().map(|&(r, _)| r).collect(),
        points,
        ratio,
        rlo,
        rhi,
        range_hi,
        rowmax,
    })
}

/// The exact evaluation of one `(class, interval)` state.
#[derive(Debug, Clone, Copy)]
struct StateEval {
    /// Worst f64 ratio over the interval's point candidates.
    value: f64,
    /// Signed target attaining it.
    target: f64,
    /// Certified lower bound (point candidates only, so `lo <= value`).
    lo: f64,
    /// Certified upper bound (point and crossing-range columns, so the
    /// true supremum of the branch over the interval is `<= hi`).
    hi: f64,
}

fn evaluate_state(table: &IntervalTable, faulty: &[bool]) -> StateEval {
    let reliable: Vec<usize> =
        (0..table.rows.len()).filter(|&i| !faulty[table.rows[i] as usize]).collect();
    debug_assert!(!reliable.is_empty(), "covered intervals keep a reliable row under <= f faults");
    let mut best: Option<(f64, f64)> = None;
    let mut lo_acc = f64::NEG_INFINITY;
    let mut hi_acc = f64::NEG_INFINITY;
    for (c, &x) in table.points.iter().enumerate() {
        let mut v = f64::INFINITY;
        let mut l = f64::INFINITY;
        let mut h = f64::INFINITY;
        for &r in &reliable {
            v = v.min(table.ratio[r][c]);
            l = l.min(table.rlo[r][c]);
            h = h.min(table.rhi[r][c]);
        }
        lo_acc = lo_acc.max(l);
        hi_acc = hi_acc.max(h);
        let sx = table.sign * x;
        let replace = match best {
            None => true,
            Some((bv, bx)) => v > bv || (v == bv && prefer_argmax(sx, bx)),
        };
        if replace {
            best = Some((v, sx));
        }
    }
    let range_cols = table.range_hi.first().map_or(0, Vec::len);
    for q in 0..range_cols {
        let mut h = f64::INFINITY;
        for &r in &reliable {
            h = h.min(table.range_hi[r][q]);
        }
        hi_acc = hi_acc.max(h);
    }
    let (value, target) = best.expect("every interval carries at least one point candidate");
    StateEval { value, target, lo: lo_acc, hi: hi_acc }
}

/// Cheap certified upper bound on a state's value: `min_row max_col`
/// of the outward upper-bound matrix dominates `max_col min_row`.
fn state_upper_bound(table: &IntervalTable, faulty: &[bool]) -> f64 {
    let mut ub = f64::INFINITY;
    for (i, &r) in table.rows.iter().enumerate() {
        if !faulty[r as usize] {
            ub = ub.min(table.rowmax[i]);
        }
    }
    ub
}

/// A merged canonical fault class.
struct MaskClass {
    /// Raw masks this class represents, invisible-group placements
    /// included.
    multiplicity: usize,
    /// Whether the class must be evaluated (exactly `f` faults, or
    /// every visible group saturated) rather than subset-pruned.
    evaluate: bool,
    /// Canonical representative: `faulty[robot]` for the first
    /// `key[g]` members of each visible group.
    faulty: Vec<bool>,
}

/// `Σ_{k<=f} C(n, k)`, saturating.
fn mask_space_size(n: usize, f: usize) -> usize {
    let mut total: usize = 0;
    let mut binom: u128 = 1;
    for k in 0..=f.min(n) {
        if k > 0 {
            binom = binom * (n as u128 - k as u128 + 1) / k as u128;
        }
        total = total.saturating_add(usize::try_from(binom).unwrap_or(usize::MAX));
    }
    total
}

/// Number of per-group count vectors with `counts[g] <= caps[g]` and
/// total `<= f`, by saturating DP — bounds the frontier before it is
/// materialized.
fn class_space_size(caps: &[usize], f: usize) -> usize {
    let mut ways = vec![0usize; f + 1];
    ways[0] = 1;
    for &cap in caps {
        let mut next = vec![0usize; f + 1];
        for t in 0..=f {
            if ways[t] == 0 {
                continue;
            }
            for c in 0..=cap.min(f - t) {
                next[t + c] = next[t + c].saturating_add(ways[t]);
            }
        }
        ways = next;
    }
    ways.iter().fold(0usize, |a, &b| a.saturating_add(b))
}

/// `C(n, k)` as a saturating usize.
fn binomial(n: usize, k: usize) -> usize {
    let mut b: u128 = 1;
    for i in 0..k.min(n - k) {
        b = b * (n as u128 - i as u128) / (i as u128 + 1);
    }
    usize::try_from(b).unwrap_or(usize::MAX)
}

/// Enumerates every per-group fault-count vector with total `<= f`
/// through an explicit FIFO frontier (no recursion); each vector is
/// generated exactly once by only incrementing groups at or after the
/// last incremented index.
fn frontier_classes(caps: &[usize], f: usize) -> Vec<Vec<u32>> {
    let mut queue: VecDeque<(Vec<u32>, usize)> = VecDeque::new();
    queue.push_back((vec![0; caps.len()], 0));
    let mut classes = Vec::new();
    while let Some((counts, from)) = queue.pop_front() {
        let total: usize = counts.iter().map(|&c| c as usize).sum();
        if total < f {
            for g in from..caps.len() {
                if (counts[g] as usize) < caps[g] {
                    let mut next = counts.clone();
                    next[g] += 1;
                    queue.push_back((next, g));
                }
            }
        }
        classes.push(counts);
    }
    classes
}

/// Robots grouped by bitwise-identical affine contributions across
/// every interval of both sides. Groups are ordered by their smallest
/// member; `signature[g]` empty means the group never appears in the
/// window ("invisible").
struct Symmetry {
    members: Vec<Vec<u32>>,
    visible: Vec<bool>,
}

fn group_robots(n: usize, jobs: &[TableJob]) -> Symmetry {
    let mut signatures: Vec<Vec<(u32, u64, u64)>> = vec![Vec::new(); n];
    for (t, job) in jobs.iter().enumerate() {
        for &(robot, a) in &job.rows {
            signatures[robot as usize].push((t as u32, a.slope.to_bits(), a.intercept.to_bits()));
        }
    }
    let mut by_signature: BTreeMap<Vec<(u32, u64, u64)>, Vec<u32>> = BTreeMap::new();
    for (robot, sig) in signatures.into_iter().enumerate() {
        by_signature.entry(sig).or_default().push(robot as u32);
    }
    let mut members: Vec<Vec<u32>> = by_signature.values().cloned().collect();
    members.sort_by_key(|m| m[0]);
    let visible = members
        .iter()
        .map(|m| !jobs.iter().all(|j| j.rows.iter().all(|&(r, _)| r != m[0])))
        .collect();
    Symmetry { members, visible }
}

/// Explores the full `(fault mask × target interval)` adversary space
/// of a fleet and reports the worst-case competitive ratio with full
/// coverage accounting and a certified enclosure.
///
/// The reported worst value is bit-identical to
/// [`faultline_analysis::exact_supremum`]`(fleet, f + 1, xmax).ratio`
/// whether or not pruning is enabled; see the module docs for why the
/// cuts are lossless.
///
/// # Errors
///
/// Rejects `f >= n`, windows the fleet does not cover at fault budget
/// `f` (the supremum is unbounded — nothing to enclose), and state
/// spaces larger than the configured budget (exploration never
/// silently subsamples).
pub fn explore_fleet(
    fleet: &Fleet,
    f: usize,
    xmax: f64,
    config: &ExploreConfig,
) -> Result<ExploreReport> {
    let n = fleet.len();
    if f >= n {
        return Err(Error::domain(format!(
            "fault budget f = {f} must be smaller than the fleet size n = {n}"
        )));
    }
    // The independent scan doubles as the coverage gate: uncovered
    // windows have an unbounded supremum and cannot be explored.
    let exact = exact_supremum(fleet, f + 1, xmax)?;
    if exact.uncovered > 0 || !exact.ratio.is_finite() {
        return Err(Error::domain(format!(
            "the window [1, {xmax}] is not covered at fault budget {f}: \
             the worst-case ratio is unbounded"
        )));
    }

    // Phase A: per-interval candidate and matrix builds, in parallel.
    let pos = attributed_first_visit_cover(fleet.trajectories(), 1.0, xmax)?;
    let neg = attributed_first_visit_cover(&mirrored(fleet.trajectories())?, 1.0, xmax)?;
    let mut jobs: Vec<TableJob> = Vec::new();
    for (sign, cover) in [(1.0, &pos), (-1.0, &neg)] {
        for (i, rows) in cover.intervals().iter().enumerate() {
            let (lo, hi) = cover.interval_bounds(i);
            jobs.push(TableJob { sign, lo, hi, is_beyond: cover.is_beyond(i), rows: rows.clone() });
        }
    }
    let tables: Vec<IntervalTable> =
        par_map_with(&jobs, &config.parallel, build_table).into_iter().collect::<Result<_>>()?;

    // Phase B: serial frontier, symmetry grouping, and cover collapse.
    let symmetry = group_robots(n, &jobs);
    let caps: Vec<usize> = symmetry.members.iter().map(Vec::len).collect();
    let class_space = class_space_size(&caps, f);
    if class_space > config.budget().max(1 << 20) {
        return Err(Error::domain(format!(
            "class space of {class_space} states exceeds the exploration budget {}: \
             need budget >= {class_space} for (n = {n}, f = {f}) — \
             raise --budget instead of subsampling",
            config.budget()
        )));
    }
    let raw_classes = frontier_classes(&caps, f);
    debug_assert_eq!(raw_classes.len(), class_space);
    let mask_classes = raw_classes.len();
    let visible_groups: Vec<usize> = (0..caps.len()).filter(|&g| symmetry.visible[g]).collect();
    let mut merged: BTreeMap<Vec<u32>, usize> = BTreeMap::new();
    for counts in &raw_classes {
        let key: Vec<u32> = visible_groups.iter().map(|&g| counts[g]).collect();
        let mult: usize = counts
            .iter()
            .enumerate()
            .map(|(g, &c)| binomial(caps[g], c as usize))
            .fold(1usize, |a, b| a.saturating_mul(b));
        *merged.entry(key).or_insert(0) += mult;
    }
    let classes: Vec<MaskClass> = merged
        .into_iter()
        .map(|(key, multiplicity)| {
            let total: usize = key.iter().map(|&c| c as usize).sum();
            let saturated = key.iter().zip(&visible_groups).all(|(&c, &g)| c as usize == caps[g]);
            let mut faulty = vec![false; n];
            for (&c, &g) in key.iter().zip(&visible_groups) {
                for &robot in &symmetry.members[g][..c as usize] {
                    faulty[robot as usize] = true;
                }
            }
            MaskClass { multiplicity, evaluate: total == f || saturated, faulty }
        })
        .collect();
    let mask_count = mask_space_size(n, f);
    debug_assert_eq!(classes.iter().map(|c| c.multiplicity).sum::<usize>(), mask_count);
    let collapsed_covers = mask_classes - classes.len();
    let intervals = tables.len();
    let class_states = classes.len() * intervals;
    let raw_states = mask_count.saturating_mul(intervals);

    // The evaluation frontier: canonical (class, interval) order.
    let states: Vec<(usize, usize)> = classes
        .iter()
        .enumerate()
        .filter(|(_, c)| config.exhaustive || c.evaluate)
        .flat_map(|(ci, _)| (0..intervals).map(move |ti| (ci, ti)))
        .collect();
    if states.len() > config.budget() {
        return Err(Error::domain(format!(
            "{} evaluations exceed the exploration budget {}: \
             need budget >= {} for (n = {n}, f = {f}) — \
             raise --budget instead of subsampling",
            states.len(),
            config.budget(),
            states.len()
        )));
    }

    // Phases C + D: bound, prune, evaluate, and merge.
    let evals: Vec<Option<StateEval>> = if config.exhaustive {
        par_map_with(&states, &config.parallel, |&(ci, ti)| {
            Some(evaluate_state(&tables[ti], &classes[ci].faulty))
        })
    } else {
        let bounds: Vec<f64> = states
            .iter()
            .map(|&(ci, ti)| state_upper_bound(&tables[ti], &classes[ci].faulty))
            .collect();
        let leader = (0..states.len())
            .max_by(|&a, &b| bounds[a].partial_cmp(&bounds[b]).expect("bounds are finite"))
            .expect("a covered window always has an exactly-f state");
        let (lci, lti) = states[leader];
        let leader_eval = evaluate_state(&tables[lti], &classes[lci].faulty);
        let threshold = leader_eval.lo;
        let survivors: Vec<usize> =
            (0..states.len()).filter(|&s| s != leader && bounds[s] > threshold).collect();
        let survivor_evals = par_map_with(&survivors, &config.parallel, |&s| {
            let (ci, ti) = states[s];
            evaluate_state(&tables[ti], &classes[ci].faulty)
        });
        let mut slots: Vec<Option<StateEval>> = vec![None; states.len()];
        slots[leader] = Some(leader_eval);
        for (&s, eval) in survivors.iter().zip(survivor_evals) {
            slots[s] = Some(eval);
        }
        slots
    };

    // Serial merge in canonical order with the scan's tie-break.
    let mut worst: Option<(f64, f64, usize)> = None;
    let mut lo_acc = f64::NEG_INFINITY;
    let mut hi_acc = f64::NEG_INFINITY;
    let mut explored = 0usize;
    let mut raw_covered = 0usize;
    for (s, eval) in evals.iter().enumerate() {
        let Some(eval) = eval else { continue };
        explored += 1;
        raw_covered = raw_covered.saturating_add(classes[states[s].0].multiplicity);
        lo_acc = lo_acc.max(eval.lo);
        hi_acc = hi_acc.max(eval.hi);
        let replace = match worst {
            None => true,
            Some((bv, bx, _)) => {
                eval.value > bv || (eval.value == bv && prefer_argmax(eval.target, bx))
            }
        };
        if replace {
            worst = Some((eval.value, eval.target, states[s].0));
        }
    }
    let (value, target, worst_class) =
        worst.expect("a covered window evaluates at least one state");
    let faulty: Vec<u32> = classes[worst_class]
        .faulty
        .iter()
        .enumerate()
        .filter(|&(_, &x)| x)
        .map(|(r, _)| r as u32)
        .collect();
    let pruned_dominance = class_states - explored;

    Ok(ExploreReport {
        version: REPORT_VERSION,
        n,
        f,
        xmax,
        seed: config.seed,
        pruning: !config.exhaustive,
        robot_groups: symmetry.members.len(),
        mask_count,
        mask_classes,
        collapsed_covers,
        intervals,
        raw_states,
        class_states,
        explored,
        pruned_dominance,
        subsampled: 0,
        raw_covered,
        exact_ratio: exact.ratio,
        matches_exact: value.to_bits() == exact.ratio.to_bits(),
        worst: WorstCase { value, target, faulty, enclosure_lo: lo_acc, enclosure_hi: hi_acc },
    })
}

/// Explores the paper's `A(n, f)` proportional fleet over the window
/// `[-xmax, -1] ∪ [1, xmax]` — the CLI entry point.
///
/// # Errors
///
/// Propagates parameter validation ([`Params::new`]), schedule design,
/// and [`explore_fleet`] failures.
pub fn explore_pair(
    n: usize,
    f: usize,
    xmax: f64,
    config: &ExploreConfig,
) -> Result<ExploreReport> {
    let params = Params::new(n, f)?;
    let alg = Algorithm::design(params)?;
    let horizon = alg.required_horizon(xmax * (1.0 + 1e-6))?;
    let fleet = Fleet::from_plans(&alg.plans(), horizon)?;
    explore_fleet(&fleet, f, xmax, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_core::TrajectoryBuilder;

    /// The Table 1 pairs with `n <= 5`.
    pub const SMALL_PAIRS: [(usize, usize); 8] =
        [(2, 1), (3, 1), (3, 2), (4, 2), (4, 3), (5, 2), (5, 3), (5, 4)];

    #[test]
    fn frontier_enumerates_each_class_once() {
        let caps = [2usize, 1, 3];
        let classes = frontier_classes(&caps, 3);
        assert_eq!(classes.len(), class_space_size(&caps, 3));
        let mut sorted = classes.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), classes.len(), "no duplicates");
        assert!(classes.iter().all(|c| c.iter().map(|&x| x as usize).sum::<usize>() <= 3
            && c.iter().zip(&caps).all(|(&x, &cap)| x as usize <= cap)));
    }

    #[test]
    fn counting_helpers_match_closed_forms() {
        assert_eq!(mask_space_size(5, 2), 16);
        assert_eq!(mask_space_size(4, 4), 16);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 0), 1);
        // Singleton groups: classes are exactly the masks.
        assert_eq!(class_space_size(&[1, 1, 1, 1, 1], 2), 16);
    }

    #[test]
    fn pruned_and_exhaustive_agree_bitwise_with_the_exact_scan() {
        for &(n, f) in &SMALL_PAIRS {
            let pruned = explore_pair(n, f, 25.0, &ExploreConfig::default()).unwrap();
            let exhaustive = explore_pair(
                n,
                f,
                25.0,
                &ExploreConfig { exhaustive: true, ..ExploreConfig::default() },
            )
            .unwrap();
            assert_eq!(
                pruned.worst.value.to_bits(),
                exhaustive.worst.value.to_bits(),
                "(n = {n}, f = {f}): pruning changed the worst value"
            );
            assert!(pruned.matches_exact, "(n = {n}, f = {f}): pruned vs exact scan");
            assert!(exhaustive.matches_exact, "(n = {n}, f = {f}): exhaustive vs exact scan");
            assert!(
                pruned.explored < exhaustive.explored,
                "(n = {n}, f = {f}): pruning must visit strictly fewer states"
            );
            for r in [&pruned, &exhaustive] {
                assert_eq!(r.explored + r.pruned_dominance, r.class_states);
                assert_eq!(r.subsampled, 0);
                assert!(r.worst.enclosure_lo <= r.worst.value);
                assert!(r.worst.value <= r.worst.enclosure_hi);
            }
            assert!(
                pruned.raw_cut_fraction() >= 0.30,
                "(n = {n}, f = {f}): only {} of raw states cut",
                pruned.raw_cut_fraction()
            );
        }
    }

    #[test]
    fn enclosures_agree_with_the_enclosed_scan_bitwise() {
        for &(n, f) in &[(3usize, 1usize), (4, 2), (5, 3)] {
            let params = Params::new(n, f).unwrap();
            let alg = Algorithm::design(params).unwrap();
            let horizon = alg.required_horizon(25.0 * (1.0 + 1e-6)).unwrap();
            let fleet = Fleet::from_plans(&alg.plans(), horizon).unwrap();
            let report = explore_fleet(&fleet, f, 25.0, &ExploreConfig::default()).unwrap();
            let enclosed =
                faultline_analysis::exact_supremum_enclosed(&fleet, f + 1, 25.0).unwrap();
            assert_eq!(
                report.worst.enclosure_lo.to_bits(),
                enclosed.enclosure.lo().to_bits(),
                "(n = {n}, f = {f}): enclosure lower bounds diverge"
            );
            assert_eq!(
                report.worst.enclosure_hi.to_bits(),
                enclosed.enclosure.hi().to_bits(),
                "(n = {n}, f = {f}): enclosure upper bounds diverge"
            );
        }
    }

    #[test]
    fn symmetry_and_cover_collapse_merge_equivalent_robots() {
        // Two right sweepers (reaching 5 and 6 — identical inside the
        // window [1, 4] and over its beyond limit), two left mirrors,
        // and one robot that never reaches the window at all.
        let t = |to: f64| TrajectoryBuilder::from_origin().sweep_to(to).finish().unwrap();
        let fleet = Fleet::new(vec![t(5.0), t(6.0), t(-5.0), t(-6.0), t(0.5)]).unwrap();
        let report = explore_fleet(&fleet, 1, 4.0, &ExploreConfig::default()).unwrap();
        assert_eq!(report.robot_groups, 3, "right pair, left pair, invisible singleton");
        // Frontier classes: {}, {right}, {left}, {invisible}.
        assert_eq!(report.mask_classes, 4);
        assert_eq!(report.collapsed_covers, 1, "faulting the invisible robot = empty mask");
        assert_eq!(report.mask_count, 6);
        assert!(report.matches_exact);
        assert_eq!(report.explored + report.pruned_dominance, report.class_states);
    }

    #[test]
    fn budget_overflow_is_a_hard_error_not_a_subsample() {
        let config = ExploreConfig { budget: Some(2), ..ExploreConfig::default() };
        let err = explore_pair(4, 2, 10.0, &config).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("budget"), "{message}");
        // The diagnostic is actionable: it names the budget that would
        // suffice and the (n, f) pair it was computed for.
        assert!(message.contains("need budget >= "), "{message}");
        assert!(message.contains("(n = 4, f = 2)"), "{message}");
    }

    #[test]
    fn uncovered_windows_are_rejected() {
        // One right ray cannot cover the negative side.
        let right = TrajectoryBuilder::from_origin().sweep_to(9.0).finish().unwrap();
        let fleet = Fleet::new(vec![right]).unwrap();
        assert!(explore_fleet(&fleet, 0, 5.0, &ExploreConfig::default()).is_err());
    }

    #[test]
    fn rejects_fault_budgets_of_the_whole_fleet() {
        let t = |to: f64| TrajectoryBuilder::from_origin().sweep_to(to).finish().unwrap();
        let fleet = Fleet::new(vec![t(9.0), t(-9.0)]).unwrap();
        assert!(explore_fleet(&fleet, 2, 5.0, &ExploreConfig::default()).is_err());
    }

    #[test]
    fn reports_are_byte_identical_across_thread_counts() {
        let runs: Vec<String> = [
            ParallelConfig::default(),
            ParallelConfig::with_threads(1),
            ParallelConfig::with_threads(3),
        ]
        .into_iter()
        .map(|parallel| {
            let config = ExploreConfig { parallel, ..ExploreConfig::default() };
            let report = explore_pair(4, 2, 18.0, &config).unwrap();
            format!("{}\n{}", report.csv_row(), report.to_json().unwrap())
        })
        .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }
}
