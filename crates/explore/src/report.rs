//! Versioned coverage reports for exploration runs.
//!
//! Every exploration emits exactly one [`ExploreReport`] that accounts
//! for the whole state space: `explored + pruned_dominance ==
//! class_states` and `subsampled == 0` always hold, so a report can
//! never silently present a capped run as a complete one. Reports
//! render to JSON (for programmatic consumers) and to a stable CSV row
//! (for the committed `out/explore_coverage.csv` artifact); both
//! renderings are byte-deterministic across runs and thread counts.

use faultline_core::{Error, Result};
use serde::Serialize;

/// Version stamp of the report schema; bump on any field change.
pub const REPORT_VERSION: u32 = 1;

/// The worst adversary choice found by an exploration.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorstCase {
    /// The worst-case competitive ratio `T_(f+1)(x) / |x|`, bit-equal
    /// to [`faultline_analysis::exact_supremum`] on the same fleet.
    pub value: f64,
    /// The signed target position attaining it (deterministic under
    /// ties: smallest magnitude, then the positive side).
    pub target: f64,
    /// Canonical representative of the worst fault class: the faulty
    /// robot indices.
    pub faulty: Vec<u32>,
    /// Certified lower bound on the true supremum (never exceeds
    /// `value`).
    pub enclosure_lo: f64,
    /// Certified upper bound on the true supremum (never below
    /// `value`).
    pub enclosure_hi: f64,
}

/// Coverage accounting for one exploration run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExploreReport {
    /// Schema version ([`REPORT_VERSION`]).
    pub version: u32,
    /// Fleet size.
    pub n: usize,
    /// Fault budget.
    pub f: usize,
    /// Window bound: targets range over `[-xmax, -1] ∪ [1, xmax]`.
    pub xmax: f64,
    /// Recorded seed. The engine is fully deterministic and never
    /// draws from it; it exists so report provenance lines match the
    /// CLI invocation.
    pub seed: u64,
    /// Whether dominance pruning was enabled (`false` for the
    /// `--exhaustive` differential baseline).
    pub pruning: bool,
    /// Robot symmetry groups (robots with bitwise-identical induced
    /// affine contributions collapse into one group).
    pub robot_groups: usize,
    /// Raw fault masks, `Σ_{k<=f} C(n, k)`.
    pub mask_count: usize,
    /// Canonical mask classes visited by the frontier (masks identical
    /// up to robot-index symmetry collapse to one class).
    pub mask_classes: usize,
    /// Mask classes further merged because they induce bit-identical
    /// reliable `WindowCover`s (e.g. faulting a robot that never
    /// enters the window is equivalent to faulting nobody).
    pub collapsed_covers: usize,
    /// Adversary target intervals across both window sides (the
    /// critical-point partition, beyond-window limits included).
    pub intervals: usize,
    /// Raw adversary states, `mask_count × intervals`.
    pub raw_states: usize,
    /// Equivalence-class states, `distinct classes × intervals` — the
    /// `M` in "explored N of M".
    pub class_states: usize,
    /// Equivalence-class states actually evaluated — the `N`.
    pub explored: usize,
    /// Equivalence-class states cut by dominance pruning (subset
    /// dominance plus certified branch-and-bound) — the `K`.
    pub pruned_dominance: usize,
    /// Always `0`: the engine errors out instead of subsampling.
    pub subsampled: usize,
    /// Raw states represented by the evaluated classes
    /// (multiplicity-weighted), for the raw-state cut fraction.
    pub raw_covered: usize,
    /// The independent [`faultline_analysis::exact_supremum`] value
    /// for the same fleet, carried for differential checking.
    pub exact_ratio: f64,
    /// Whether `worst.value` equals `exact_ratio` bit-for-bit.
    pub matches_exact: bool,
    /// The worst adversary choice and its certified enclosure.
    pub worst: WorstCase,
}

impl ExploreReport {
    /// Fraction of raw `mask × interval` states cut away by symmetry,
    /// cover collapse, and dominance pruning, in `[0, 1]`.
    #[must_use]
    pub fn raw_cut_fraction(&self) -> f64 {
        if self.raw_states == 0 {
            return 0.0;
        }
        1.0 - self.raw_covered as f64 / self.raw_states as f64
    }

    /// Fraction of equivalence classes accounted for (evaluated or
    /// provably dominance-pruned); `1.0` by construction.
    #[must_use]
    pub fn coverage_fraction(&self) -> f64 {
        if self.class_states == 0 {
            return 1.0;
        }
        (self.explored + self.pruned_dominance) as f64 / self.class_states as f64
    }

    /// Width of the certified supremum enclosure.
    #[must_use]
    pub fn enclosure_width(&self) -> f64 {
        self.worst.enclosure_hi - self.worst.enclosure_lo
    }

    /// One-line human summary in the canonical coverage phrasing.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "n = {}, f = {}: explored {} of {} equivalence classes, pruned {} by dominance, \
             subsampled {}; worst K = {} at x = {} in [{}, {}]",
            self.n,
            self.f,
            self.explored,
            self.class_states,
            self.pruned_dominance,
            self.subsampled,
            self.worst.value,
            self.worst.target,
            self.worst.enclosure_lo,
            self.worst.enclosure_hi,
        )
    }

    /// Header line of the CSV rendering.
    #[must_use]
    pub fn csv_header() -> &'static str {
        "version,n,f,xmax,pruning,robot_groups,mask_count,mask_classes,collapsed_covers,\
         intervals,raw_states,class_states,explored,pruned_dominance,subsampled,raw_covered,\
         raw_cut_fraction,worst_value,worst_target,enclosure_lo,enclosure_hi,exact_ratio,\
         matches_exact"
    }

    /// One CSV row; floats use Rust's shortest-roundtrip formatting,
    /// so rows are byte-deterministic and lossless.
    #[must_use]
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.version,
            self.n,
            self.f,
            self.xmax,
            self.pruning,
            self.robot_groups,
            self.mask_count,
            self.mask_classes,
            self.collapsed_covers,
            self.intervals,
            self.raw_states,
            self.class_states,
            self.explored,
            self.pruned_dominance,
            self.subsampled,
            self.raw_covered,
            self.raw_cut_fraction(),
            self.worst.value,
            self.worst.target,
            self.worst.enclosure_lo,
            self.worst.enclosure_hi,
            self.exact_ratio,
            self.matches_exact,
        )
    }

    /// Pretty JSON rendering.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures (none are expected: every float
    /// in a successful report is finite).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| Error::domain(format!("cannot serialize exploration report: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ExploreReport {
        ExploreReport {
            version: REPORT_VERSION,
            n: 3,
            f: 1,
            xmax: 25.0,
            seed: 0,
            pruning: true,
            robot_groups: 3,
            mask_count: 4,
            mask_classes: 4,
            collapsed_covers: 0,
            intervals: 10,
            raw_states: 40,
            class_states: 40,
            explored: 30,
            pruned_dominance: 10,
            subsampled: 0,
            raw_covered: 30,
            exact_ratio: 9.0,
            matches_exact: true,
            worst: WorstCase {
                value: 9.0,
                target: 2.0,
                faulty: vec![1],
                enclosure_lo: 9.0 - 1e-12,
                enclosure_hi: 9.0 + 1e-12,
            },
        }
    }

    #[test]
    fn accounting_identities_hold() {
        let r = report();
        assert_eq!(r.explored + r.pruned_dominance, r.class_states);
        assert!((r.coverage_fraction() - 1.0).abs() < 1e-15);
        assert!((r.raw_cut_fraction() - 0.25).abs() < 1e-15);
        assert!(r.enclosure_width() > 0.0);
    }

    #[test]
    fn summary_uses_the_canonical_phrasing() {
        let s = report().summary();
        assert!(s.contains("explored 30 of 40 equivalence classes"), "{s}");
        assert!(s.contains("pruned 10 by dominance"), "{s}");
        assert!(s.contains("subsampled 0"), "{s}");
    }

    #[test]
    fn csv_row_matches_the_header_arity() {
        let header_fields = ExploreReport::csv_header().split(',').count();
        let row_fields = report().csv_row().split(',').count();
        assert_eq!(header_fields, row_fields);
        assert_eq!(header_fields, 23);
    }

    #[test]
    fn json_rendering_round_trips_key_fields() {
        let j = report().to_json().unwrap();
        assert!(j.contains("\"version\""));
        assert!(j.contains("\"subsampled\""));
        assert!(j.contains("\"enclosure_hi\""));
    }
}
