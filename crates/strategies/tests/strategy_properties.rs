//! Property-based tests over the whole strategy registry: structural
//! guarantees every strategy must uphold regardless of parameters.

use faultline_core::coverage::Fleet;
use faultline_core::Params;
use faultline_strategies::{all_strategies, strategy_by_name};
use proptest::prelude::*;

fn any_params() -> impl Strategy<Value = Params> {
    (1usize..12).prop_flat_map(|n| (0usize..n).prop_map(move |f| Params::new(n, f).unwrap()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every strategy that accepts the parameters produces exactly one
    /// plan per robot, and every plan materializes to a unit-speed
    /// trajectory covering exactly the requested horizon.
    #[test]
    fn plans_are_structurally_sound(params in any_params(), horizon in 5.0f64..200.0) {
        for strategy in all_strategies() {
            let Ok(plans) = strategy.plans(params) else { continue };
            prop_assert_eq!(plans.len(), params.n(), "{}", strategy.name());
            for plan in &plans {
                let traj = plan.materialize(horizon).unwrap();
                prop_assert!((traj.horizon() - horizon).abs() < 1e-9, "{}", strategy.name());
                for seg in traj.segments() {
                    prop_assert!(
                        seg.speed() <= 1.0 + 1e-9,
                        "{}: superluminal segment",
                        strategy.name()
                    );
                }
            }
        }
    }

    /// A strategy's claimed analytic competitive ratio is never beaten
    /// from above by measurement: the measured ratio at any single
    /// target stays below the claim.
    #[test]
    fn claims_are_honest(params in any_params(), x in 1.0f64..20.0, neg in any::<bool>()) {
        let target = if neg { -x } else { x };
        for strategy in all_strategies() {
            let Some(claimed) = strategy.analytic_cr(params) else { continue };
            let Ok(plans) = strategy.plans(params) else { continue };
            let horizon = strategy.horizon_hint(params, 21.0);
            let fleet = Fleet::from_plans(&plans, horizon).unwrap();
            if let Some(t) = fleet.visit_time(target, params.required_visits()) {
                prop_assert!(
                    t / x <= claimed + 1e-6,
                    "{} at {params}: measured {} > claimed {claimed}",
                    strategy.name(),
                    t / x
                );
            }
        }
    }

    /// Registry lookups are total over the registry's own names.
    #[test]
    fn registry_roundtrip(_x in 0..1i32) {
        for strategy in all_strategies() {
            let found = strategy_by_name(strategy.name());
            prop_assert!(found.is_some(), "{} not found by its own name", strategy.name());
            prop_assert_eq!(found.unwrap().name(), strategy.name());
        }
    }

    /// The paper's strategy is never worse than any other *complete*
    /// strategy's claimed guarantee at the same parameters.
    #[test]
    fn paper_claim_is_the_best_guarantee(params in any_params()) {
        let paper = strategy_by_name("paper").unwrap();
        let paper_cr = paper.analytic_cr(params).unwrap();
        for strategy in all_strategies() {
            if let Some(other) = strategy.analytic_cr(params) {
                prop_assert!(
                    paper_cr <= other + 1e-9,
                    "{} claims {other} < paper's {paper_cr} at {params}",
                    strategy.name()
                );
            }
        }
    }
}
