//! The trivial optimal strategy for `n >= 2f + 2`: two groups of at
//! least `f + 1` robots sweep in opposite directions.

use faultline_core::{Direction, Error, Params, RayPlan, Regime, Result, TrajectoryPlan};

use crate::Strategy;

/// Two groups of at least `f + 1` robots each, sent left and right at
/// full speed. Competitive ratio 1 — optimal — but only applicable when
/// `n >= 2f + 2`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TwoGroupStrategy;

impl TwoGroupStrategy {
    /// Creates the strategy.
    #[must_use]
    pub fn new() -> Self {
        TwoGroupStrategy
    }
}

impl Strategy for TwoGroupStrategy {
    fn name(&self) -> &'static str {
        "two-group"
    }

    fn description(&self) -> String {
        "two groups of >= f+1 robots sweep opposite directions (CR 1, needs n >= 2f+2)".to_owned()
    }

    fn plans(&self, params: Params) -> Result<Vec<Box<dyn TrajectoryPlan>>> {
        if params.regime() != Regime::TwoGroup {
            return Err(Error::invalid_params(
                params.n(),
                params.f(),
                "two-group strategy requires n >= 2f + 2 (each group needs f + 1 robots)",
            ));
        }
        let right = params.n().div_ceil(2);
        Ok((0..params.n())
            .map(|i| {
                let dir = if i < right { Direction::Right } else { Direction::Left };
                Box::new(RayPlan::new(dir)) as Box<dyn TrajectoryPlan>
            })
            .collect())
    }

    fn analytic_cr(&self, params: Params) -> Option<f64> {
        (params.regime() == Regime::TwoGroup).then_some(1.0)
    }

    fn horizon_hint(&self, _params: Params, xmax: f64) -> f64 {
        1.5 * xmax
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_core::coverage::Fleet;

    #[test]
    fn rejects_insufficient_robots() {
        let strategy = TwoGroupStrategy::new();
        assert!(strategy.plans(Params::new(3, 1).unwrap()).is_err());
        assert!(strategy.analytic_cr(Params::new(3, 1).unwrap()).is_none());
    }

    #[test]
    fn achieves_ratio_one() {
        let params = Params::new(6, 2).unwrap();
        let strategy = TwoGroupStrategy::new();
        let plans = strategy.plans(params).unwrap();
        let fleet = Fleet::from_plans(&plans, strategy.horizon_hint(params, 50.0)).unwrap();
        for x in [1.0, -1.0, 25.0, -50.0] {
            let t = fleet.visit_time(x, params.required_visits()).unwrap();
            assert!((t - x.abs()).abs() < 1e-9, "x = {x}");
        }
        assert_eq!(strategy.analytic_cr(params), Some(1.0));
    }

    #[test]
    fn odd_fleet_splits_with_majority_right() {
        let params = Params::new(7, 2).unwrap();
        let plans = TwoGroupStrategy::new().plans(params).unwrap();
        let right = plans.iter().filter(|p| p.label() == "ray(+)").count();
        let left = plans.iter().filter(|p| p.label() == "ray(-)").count();
        assert_eq!((right, left), (4, 3));
    }
}
