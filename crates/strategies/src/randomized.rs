//! Randomized zig-zag strategies (after Kao, Reif and Tate's optimal
//! randomized cow-path algorithm), extended to the faulty parallel
//! setting.
//!
//! A randomized geometric sweep draws a uniform phase `u ∈ [0, 1)` and
//! a random initial direction, then sweeps with turning magnitudes
//! `r^(u), r^(u+1), r^(u+2), ...`. For a single reliable robot the
//! expected competitive ratio is `1 + (1 + r)/ln r`, minimized at
//! `r* ≈ 3.59112` with value `≈ 4.59112` — beating every deterministic
//! strategy's 9. Whether (and how much) randomization helps against
//! `f` faults is open; `faultline-analysis::randomized` measures it.

use faultline_core::{Error, Params, Result, TrajectoryPlan};
use rand::Rng;

use crate::doubling::GeometricSweepPlan;

/// A source of randomized plan assignments: unlike
/// [`crate::Strategy`], each call draws fresh coins.
pub trait RandomizedStrategy: std::fmt::Debug {
    /// Stable machine name.
    fn name(&self) -> &'static str;

    /// Samples one concrete plan assignment for `params`.
    ///
    /// # Errors
    ///
    /// Returns an error when the strategy cannot serve the parameters.
    fn sample_plans(
        &self,
        params: Params,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Box<dyn TrajectoryPlan>>>;

    /// A horizon sufficient to confirm targets up to `xmax` with any
    /// coin outcome.
    fn horizon_hint(&self, params: Params, xmax: f64) -> f64;
}

/// The randomized geometric sweep: every robot independently draws a
/// phase and a direction, all sharing the expansion factor `r`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomizedSweepStrategy {
    expansion: f64,
}

impl RandomizedSweepStrategy {
    /// Creates the strategy with expansion factor `r > 1`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] for `r <= 1` or non-finite.
    pub fn new(expansion: f64) -> Result<Self> {
        if !(expansion > 1.0) || !expansion.is_finite() {
            return Err(Error::domain(format!(
                "randomized sweep needs expansion > 1, got {expansion}"
            )));
        }
        Ok(RandomizedSweepStrategy { expansion })
    }

    /// The Kao–Reif–Tate optimal expansion factor for a single
    /// reliable robot: the minimizer of `1 + (1 + r)/ln r`.
    #[must_use]
    pub fn kao_optimal() -> Self {
        RandomizedSweepStrategy { expansion: kao_optimal_expansion() }
    }

    /// The expansion factor.
    #[must_use]
    pub fn expansion(&self) -> f64 {
        self.expansion
    }

    /// The single-robot expected competitive ratio of this expansion,
    /// `1 + (1 + r)/ln r` (asymptotic, phase-averaged).
    #[must_use]
    pub fn single_robot_expected_cr(&self) -> f64 {
        1.0 + (1.0 + self.expansion) / self.expansion.ln()
    }
}

/// The minimizer of `1 + (1 + r)/ln r` over `r > 1` (≈ 3.59112).
#[must_use]
pub fn kao_optimal_expansion() -> f64 {
    faultline_core::numeric::golden_min(|r| 1.0 + (1.0 + r) / r.ln(), 1.0 + 1e-9, 20.0, 1e-12, 500)
        .expect("the objective is unimodal on (1, 20)")
}

impl RandomizedStrategy for RandomizedSweepStrategy {
    fn name(&self) -> &'static str {
        "randomized-sweep"
    }

    fn sample_plans(
        &self,
        params: Params,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Box<dyn TrajectoryPlan>>> {
        (0..params.n())
            .map(|_| {
                let phase: f64 = rng.random_range(0.0..1.0);
                let magnitude = self.expansion.powf(phase);
                let sign = if rng.random_bool(0.5) { 1.0 } else { -1.0 };
                Ok(Box::new(GeometricSweepPlan::new(sign * magnitude, self.expansion)?)
                    as Box<dyn TrajectoryPlan>)
            })
            .collect()
    }

    fn horizon_hint(&self, params: Params, xmax: f64) -> f64 {
        // Worst coin outcome: every robot starts with the maximal first
        // leg on the wrong side; a few expansion steps past xmax suffice
        // for f + 1 distinct visits.
        let r = self.expansion;
        4.0 * xmax * r.powi(params.f() as i32 + 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_core::coverage::Fleet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validates_expansion() {
        assert!(RandomizedSweepStrategy::new(1.0).is_err());
        assert!(RandomizedSweepStrategy::new(f64::NAN).is_err());
        assert!(RandomizedSweepStrategy::new(2.0).is_ok());
    }

    #[test]
    fn kao_optimum_matches_literature() {
        let r = kao_optimal_expansion();
        assert!((r - 3.59112).abs() < 1e-3, "r* = {r}");
        let cr = RandomizedSweepStrategy::kao_optimal().single_robot_expected_cr();
        assert!((cr - 4.59112).abs() < 1e-3, "expected CR = {cr}");
    }

    #[test]
    fn sampling_is_seeded_and_reproducible() {
        let strategy = RandomizedSweepStrategy::new(2.0).unwrap();
        let params = Params::new(3, 1).unwrap();
        let labels = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            strategy
                .sample_plans(params, &mut rng)
                .unwrap()
                .iter()
                .map(|p| p.label())
                .collect::<Vec<_>>()
        };
        assert_eq!(labels(1), labels(1));
        assert_ne!(labels(1), labels(2));
    }

    #[test]
    fn sampled_phases_are_within_one_expansion_step() {
        let strategy = RandomizedSweepStrategy::new(3.0).unwrap();
        let params = Params::new(5, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let plans = strategy.sample_plans(params, &mut rng).unwrap();
            assert_eq!(plans.len(), 5);
            for plan in &plans {
                let traj = plan.materialize(100.0).unwrap();
                let first_turn = traj.turning_points()[0].x.abs();
                assert!((1.0..3.0).contains(&first_turn), "first leg {first_turn}");
            }
        }
    }

    #[test]
    fn sampled_fleets_always_cover_with_generous_horizon() {
        let strategy = RandomizedSweepStrategy::kao_optimal();
        let params = Params::new(3, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(33);
        let horizon = strategy.horizon_hint(params, 10.0);
        for _ in 0..10 {
            let plans = strategy.sample_plans(params, &mut rng).unwrap();
            let fleet = Fleet::from_plans(&plans, horizon).unwrap();
            for x in [1.0, -5.0, 10.0] {
                assert!(
                    fleet.visit_time(x, 2).is_some(),
                    "uncovered x = {x} within horizon {horizon}"
                );
            }
        }
    }
}
