//! Deliberately weak baselines that demonstrate *why* the problem is
//! non-trivial: strategies that ignore the fault budget and pay for it
//! with an unbounded competitive ratio.

use faultline_core::{Direction, Params, RayPlan, Result, TrajectoryPlan};

use crate::Strategy;

/// Splits the fleet into two opposite sweeping groups regardless of
/// `f`.
///
/// Correct (CR 1) when both groups have at least `f + 1` robots, but
/// when `n < 2f + 2` the adversary concentrates its faults in one group
/// and the target on that group's side is **never** confirmed: the
/// competitive ratio is unbounded. This is the canonical mistake the
/// paper's proportional schedules exist to avoid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PessimalSplitStrategy;

impl PessimalSplitStrategy {
    /// Creates the strategy.
    #[must_use]
    pub fn new() -> Self {
        PessimalSplitStrategy
    }

    /// Whether the split is actually safe for these parameters.
    #[must_use]
    pub fn is_safe(&self, params: Params) -> bool {
        params.n() / 2 > params.f()
    }
}

impl Strategy for PessimalSplitStrategy {
    fn name(&self) -> &'static str {
        "pessimal-split"
    }

    fn description(&self) -> String {
        "always split into two sweeping groups, ignoring f (unbounded CR when n < 2f+2)".to_owned()
    }

    fn plans(&self, params: Params) -> Result<Vec<Box<dyn TrajectoryPlan>>> {
        let right = params.n().div_ceil(2);
        Ok((0..params.n())
            .map(|i| {
                let dir = if i < right { Direction::Right } else { Direction::Left };
                Box::new(RayPlan::new(dir)) as Box<dyn TrajectoryPlan>
            })
            .collect())
    }

    fn analytic_cr(&self, params: Params) -> Option<f64> {
        self.is_safe(params).then_some(1.0)
    }

    fn horizon_hint(&self, _params: Params, xmax: f64) -> f64 {
        1.5 * xmax
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_core::coverage::Fleet;

    #[test]
    fn safe_when_groups_are_large_enough() {
        let strategy = PessimalSplitStrategy::new();
        assert!(strategy.is_safe(Params::new(6, 2).unwrap()));
        assert_eq!(strategy.analytic_cr(Params::new(6, 2).unwrap()), Some(1.0));
    }

    #[test]
    fn unsafe_when_fault_budget_exceeds_group_size() {
        let strategy = PessimalSplitStrategy::new();
        let params = Params::new(3, 1).unwrap(); // groups of 2 and 1
        assert!(!strategy.is_safe(params));
        assert_eq!(strategy.analytic_cr(params), None);

        // Demonstrate the failure: with the left group of size 1 <= f,
        // a left-side target is never visited by f + 1 = 2 robots.
        let plans = strategy.plans(params).unwrap();
        let fleet = Fleet::from_plans(&plans, 100.0).unwrap();
        assert_eq!(fleet.visit_time(-5.0, 2), None);
        // The right side is fine (2 robots sweep right).
        assert_eq!(fleet.visit_time(5.0, 2), Some(5.0));
    }
}
