//! Doubling baselines: the classical cow-path strategy of Beck and
//! Bellman, run by a single robot or a whole herd, and a staggered
//! per-robot variant.

use faultline_core::{Error, Params, PiecewiseTrajectory, Result, SpaceTime, TrajectoryPlan};

use crate::Strategy;

/// A geometric sweep plan starting from the origin at **unit speed**:
/// the robot travels to `first_leg`, then to `-kappa * first_leg`, then
/// to `kappa^2 * first_leg`, and so on.
///
/// With `first_leg = 1` and `kappa = 2` this is the classic doubling
/// strategy with competitive ratio 9. Unlike [`faultline_core::ZigZagPlan`]
/// there is no slow initial leg: the robot leaves the origin at full
/// speed, exactly as in the original cow-path formulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometricSweepPlan {
    first_leg: f64,
    kappa: f64,
}

impl GeometricSweepPlan {
    /// Creates the plan.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] when `first_leg == 0`, non-finite, or
    /// `kappa <= 1`.
    pub fn new(first_leg: f64, kappa: f64) -> Result<Self> {
        if first_leg == 0.0 || !first_leg.is_finite() {
            return Err(Error::domain(format!(
                "first leg must be finite and non-zero, got {first_leg}"
            )));
        }
        if !(kappa > 1.0) || !kappa.is_finite() {
            return Err(Error::domain(format!("expansion factor must exceed 1, got {kappa}")));
        }
        Ok(GeometricSweepPlan { first_leg, kappa })
    }

    /// The classic doubling strategy: first leg +1, expansion factor 2.
    #[must_use]
    pub fn classic_doubling() -> Self {
        GeometricSweepPlan { first_leg: 1.0, kappa: 2.0 }
    }

    /// The signed first turning point.
    #[must_use]
    pub fn first_leg(&self) -> f64 {
        self.first_leg
    }

    /// The expansion factor between consecutive turning points.
    #[must_use]
    pub fn kappa(&self) -> f64 {
        self.kappa
    }
}

impl TrajectoryPlan for GeometricSweepPlan {
    fn materialize(&self, horizon: f64) -> Result<PiecewiseTrajectory> {
        if !(horizon > 0.0) || !horizon.is_finite() {
            return Err(Error::domain(format!(
                "materialization horizon must be finite and positive, got {horizon}"
            )));
        }
        let mut waypoints = vec![SpaceTime::origin()];
        let mut clock = 0.0;
        let mut position = 0.0;
        let mut target = self.first_leg;
        loop {
            let arrive = clock + (target - position).abs();
            if arrive >= horizon {
                let dir = (target - position).signum();
                waypoints.push(SpaceTime::new(position + dir * (horizon - clock), horizon));
                break;
            }
            waypoints.push(SpaceTime::new(target, arrive));
            clock = arrive;
            position = target;
            target *= -self.kappa;
        }
        PiecewiseTrajectory::new(waypoints)
    }

    fn label(&self) -> String {
        format!("geometric-sweep(first = {}, kappa = {})", self.first_leg, self.kappa)
    }
}

/// All `n` robots move together following the classic doubling
/// trajectory.
///
/// The paper remarks (Section 1.1) that "a competitive ratio of 9 is
/// also achieved by all robots starting at the same time, and moving
/// together while following a doubling strategy" — every point is
/// visited by all `n` robots at once, so any `f < n` faults are
/// harmless and the ratio is the single-robot 9 regardless of `f`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HerdDoublingStrategy;

impl HerdDoublingStrategy {
    /// Creates the strategy.
    #[must_use]
    pub fn new() -> Self {
        HerdDoublingStrategy
    }
}

impl Strategy for HerdDoublingStrategy {
    fn name(&self) -> &'static str {
        "herd-doubling"
    }

    fn description(&self) -> String {
        "all robots move together following the classic doubling strategy (CR 9 for any f < n)"
            .to_owned()
    }

    fn plans(&self, params: Params) -> Result<Vec<Box<dyn TrajectoryPlan>>> {
        Ok((0..params.n())
            .map(|_| Box::new(GeometricSweepPlan::classic_doubling()) as Box<dyn TrajectoryPlan>)
            .collect())
    }

    fn analytic_cr(&self, _params: Params) -> Option<f64> {
        Some(9.0)
    }
}

/// Each robot runs a doubling strategy with its first leg staggered
/// geometrically: robot `i` starts with first leg `2^(i/n)`.
///
/// A plausible hand-rolled heuristic that spreads the robots without
/// the cone discipline of the paper's proportional schedules; its
/// competitive ratio is measured empirically and is consistently worse
/// than `A(n, f)` — the motivating ablation for Definition 4's careful
/// seed placement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaggeredDoublingStrategy;

impl StaggeredDoublingStrategy {
    /// Creates the strategy.
    #[must_use]
    pub fn new() -> Self {
        StaggeredDoublingStrategy
    }
}

impl Strategy for StaggeredDoublingStrategy {
    fn name(&self) -> &'static str {
        "staggered-doubling"
    }

    fn description(&self) -> String {
        "each robot doubles with first leg 2^(i/n): spread out, but without cone discipline"
            .to_owned()
    }

    fn plans(&self, params: Params) -> Result<Vec<Box<dyn TrajectoryPlan>>> {
        let n = params.n();
        (0..n)
            .map(|i| {
                let first = 2.0_f64.powf(i as f64 / n as f64);
                // Alternate the initial direction so both sides are
                // covered early.
                let signed = if i % 2 == 0 { first } else { -first };
                Ok(Box::new(GeometricSweepPlan::new(signed, 2.0)?) as Box<dyn TrajectoryPlan>)
            })
            .collect()
    }

    fn analytic_cr(&self, _params: Params) -> Option<f64> {
        None // measured empirically
    }

    fn horizon_hint(&self, _params: Params, xmax: f64) -> f64 {
        40.0 * xmax
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_core::coverage::Fleet;
    use faultline_core::Params;

    #[test]
    fn classic_doubling_turning_points() {
        let plan = GeometricSweepPlan::classic_doubling();
        let traj = plan.materialize(100.0).unwrap();
        let xs: Vec<f64> = traj.turning_points().iter().map(|p| p.x).collect();
        assert_eq!(&xs[..5], &[1.0, -2.0, 4.0, -8.0, 16.0]);
        // Full speed from the start.
        for seg in traj.segments() {
            assert!((seg.speed() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn classic_doubling_worst_ratio_approaches_nine() {
        let plan = GeometricSweepPlan::classic_doubling();
        let traj = plan.materialize(100_000.0).unwrap();
        // Target just past turning point 2^k on the positive side.
        let x = 1024.0 + 1e-6;
        let ratio = traj.first_visit(x).unwrap() / x;
        assert!((ratio - 9.0).abs() < 0.02, "ratio = {ratio}");
    }

    #[test]
    fn plan_validation() {
        assert!(GeometricSweepPlan::new(0.0, 2.0).is_err());
        assert!(GeometricSweepPlan::new(1.0, 1.0).is_err());
        assert!(GeometricSweepPlan::new(1.0, 0.5).is_err());
        assert!(GeometricSweepPlan::classic_doubling().materialize(-1.0).is_err());
    }

    #[test]
    fn herd_doubling_has_ratio_nine_under_adversary() {
        let params = Params::new(3, 2).unwrap();
        let strategy = HerdDoublingStrategy::new();
        let plans = strategy.plans(params).unwrap();
        assert_eq!(plans.len(), 3);
        let fleet = Fleet::from_plans(&plans, 100_000.0).unwrap();
        // All robots coincide: T_(f+1) = T_1 and the worst ratio is 9-ish.
        // Positive turning points of doubling sit at powers of 4; the
        // worst case is just past one of them.
        let x = 1024.0 + 1e-6;
        let t = fleet.visit_time(x, 3).unwrap();
        assert!((t / x - 9.0).abs() < 0.05);
    }

    #[test]
    fn staggered_plans_are_distinct() {
        let params = Params::new(4, 2).unwrap();
        let plans = StaggeredDoublingStrategy::new().plans(params).unwrap();
        assert_eq!(plans.len(), 4);
        let labels: std::collections::HashSet<String> = plans.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 4, "each robot gets its own first leg");
    }

    #[test]
    fn negative_first_leg_starts_left() {
        let plan = GeometricSweepPlan::new(-1.0, 2.0).unwrap();
        let traj = plan.materialize(50.0).unwrap();
        assert_eq!(traj.first_visit(-1.0), Some(1.0));
        assert_eq!(traj.first_visit(2.0), Some(4.0));
    }
}
