//! # faultline-strategies
//!
//! A library of search strategies for the faulty-robot line search
//! problem: the paper's algorithm, the classical baselines it is
//! compared against, and deliberately weak strategies used to
//! demonstrate the lower-bound machinery.
//!
//! All strategies implement the [`Strategy`] trait: given validated
//! [`Params`], they produce one motion plan per robot. The
//! [`registry`] lists every built-in strategy by name.
//!
//! ```
//! use faultline_core::Params;
//! use faultline_strategies::{PaperStrategy, Strategy};
//!
//! let strategy = PaperStrategy::new();
//! let params = Params::new(3, 1)?;
//! let plans = strategy.plans(params)?;
//! assert_eq!(plans.len(), 3);
//! assert!((strategy.analytic_cr(params).unwrap() - 5.233).abs() < 1e-3);
//! # Ok::<(), faultline_core::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// `!(x > limit)` deliberately rejects NaN where `x <= limit` would not.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod delayed;
pub mod doubling;
pub mod naive;
pub mod proportional;
pub mod randomized;
pub mod registry;
pub mod two_group;

use faultline_core::{Params, Result, TrajectoryPlan};

pub use delayed::{DelayedDoublingStrategy, DelayedPlan, MirroredPairsStrategy};
pub use doubling::{GeometricSweepPlan, HerdDoublingStrategy, StaggeredDoublingStrategy};
pub use naive::PessimalSplitStrategy;
pub use proportional::{FixedBetaStrategy, PaperStrategy, ProportionalStrategy};
pub use randomized::{kao_optimal_expansion, RandomizedStrategy, RandomizedSweepStrategy};
pub use registry::{all_strategies, strategy_by_name};
pub use two_group::TwoGroupStrategy;

/// A complete parallel-search strategy: assigns a motion plan to each
/// of the `n` robots for a given `(n, f)`.
pub trait Strategy: std::fmt::Debug {
    /// Stable, unique machine name (used by the registry and the CLI).
    fn name(&self) -> &'static str;

    /// Human-readable description.
    fn description(&self) -> String;

    /// One plan per robot, in robot order.
    ///
    /// # Errors
    ///
    /// Returns an error when the strategy cannot handle the parameters
    /// (for example the two-group strategy with `n < 2f + 2`).
    fn plans(&self, params: Params) -> Result<Vec<Box<dyn TrajectoryPlan>>>;

    /// The strategy's provable competitive ratio for these parameters,
    /// when known. `None` means unknown or unbounded.
    fn analytic_cr(&self, params: Params) -> Option<f64>;

    /// A materialization horizon sufficient to confirm every target
    /// with `1 <= |x| <= xmax` (or to demonstrate that the strategy
    /// fails to). The default is generous: `max(analytic CR, 16)` times
    /// `xmax`, doubled.
    fn horizon_hint(&self, params: Params, xmax: f64) -> f64 {
        let cr = self.analytic_cr(params).unwrap_or(16.0).max(16.0);
        2.0 * cr * xmax
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_trait_is_object_safe() {
        let strategies: Vec<Box<dyn Strategy>> =
            vec![Box::new(PaperStrategy::new()), Box::new(HerdDoublingStrategy::new())];
        assert_eq!(strategies.len(), 2);
    }

    #[test]
    fn default_horizon_hint_is_generous() {
        let params = Params::new(3, 1).unwrap();
        let strategy = PaperStrategy::new();
        let hint = strategy.horizon_hint(params, 10.0);
        assert!(hint >= 2.0 * 16.0 * 10.0);
    }
}
