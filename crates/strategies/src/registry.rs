//! Registry of the built-in strategies, addressable by name.

use crate::delayed::{DelayedDoublingStrategy, MirroredPairsStrategy};
use crate::doubling::{HerdDoublingStrategy, StaggeredDoublingStrategy};
use crate::naive::PessimalSplitStrategy;
use crate::proportional::{PaperStrategy, ProportionalStrategy};
use crate::two_group::TwoGroupStrategy;
use crate::Strategy;

/// Every built-in strategy, boxed, in a stable order.
///
/// (The beta-ablation [`crate::FixedBetaStrategy`] is parameterized and
/// therefore not listed; construct it directly.)
#[must_use]
pub fn all_strategies() -> Vec<Box<dyn Strategy>> {
    vec![
        Box::new(PaperStrategy::new()),
        Box::new(ProportionalStrategy::new()),
        Box::new(TwoGroupStrategy::new()),
        Box::new(HerdDoublingStrategy::new()),
        Box::new(StaggeredDoublingStrategy::new()),
        Box::new(MirroredPairsStrategy::new()),
        Box::new(DelayedDoublingStrategy::new(1.0).expect("a unit delay is always valid")),
        Box::new(PessimalSplitStrategy::new()),
    ]
}

/// Looks up a built-in strategy by its stable name.
#[must_use]
pub fn strategy_by_name(name: &str) -> Option<Box<dyn Strategy>> {
    all_strategies().into_iter().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let names: Vec<&str> = all_strategies().iter().map(|s| s.name()).collect();
        let set: std::collections::HashSet<&&str> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn lookup_by_name() {
        assert!(strategy_by_name("paper").is_some());
        assert!(strategy_by_name("herd-doubling").is_some());
        assert!(strategy_by_name("no-such-strategy").is_none());
    }

    #[test]
    fn descriptions_are_nonempty() {
        for s in all_strategies() {
            assert!(!s.description().is_empty(), "{}", s.name());
        }
    }
}
