//! The paper's strategies: `A(n, f)` with the optimal cone parameter,
//! a fixed-`beta` ablation variant, and the regime-dispatching
//! "paper" strategy.

use faultline_core::{Algorithm, Params, Regime, Result, TrajectoryPlan};

use crate::Strategy;

/// The proportional schedule algorithm `A(n, f)` with the optimal
/// `beta* = (4f+4)/n - 1` (Theorem 1). Only valid in the proportional
/// regime `f < n < 2f + 2`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProportionalStrategy;

impl ProportionalStrategy {
    /// Creates the strategy.
    #[must_use]
    pub fn new() -> Self {
        ProportionalStrategy
    }
}

impl Strategy for ProportionalStrategy {
    fn name(&self) -> &'static str {
        "proportional"
    }

    fn description(&self) -> String {
        "proportional schedule A(n, f) with optimal beta (Theorem 1)".to_owned()
    }

    fn plans(&self, params: Params) -> Result<Vec<Box<dyn TrajectoryPlan>>> {
        // Force the proportional construction even where two-group would
        // apply is not allowed here; that dispatch lives in PaperStrategy.
        faultline_core::ratio::optimal_beta(params)?;
        Ok(Algorithm::design(params)?.plans())
    }

    fn analytic_cr(&self, params: Params) -> Option<f64> {
        (params.regime() == Regime::Proportional).then(|| faultline_core::ratio::cr_upper(params))
    }

    fn horizon_hint(&self, params: Params, xmax: f64) -> f64 {
        Algorithm::design(params)
            .and_then(|a| a.required_horizon(xmax.max(1.0 + 1e-6)))
            .unwrap_or(32.0 * xmax)
    }
}

/// A proportional schedule with an explicitly chosen (possibly
/// sub-optimal) `beta` — the knob behind the beta-ablation experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedBetaStrategy {
    beta: f64,
}

impl FixedBetaStrategy {
    /// Creates the strategy with the given cone parameter.
    ///
    /// # Errors
    ///
    /// Returns [`faultline_core::Error::InvalidBeta`] for `beta <= 1`.
    pub fn new(beta: f64) -> Result<Self> {
        faultline_core::Cone::new(beta)?;
        Ok(FixedBetaStrategy { beta })
    }

    /// The cone parameter.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl Strategy for FixedBetaStrategy {
    fn name(&self) -> &'static str {
        "fixed-beta"
    }

    fn description(&self) -> String {
        format!("proportional schedule with fixed beta = {} (ablation)", self.beta)
    }

    fn plans(&self, params: Params) -> Result<Vec<Box<dyn TrajectoryPlan>>> {
        Ok(Algorithm::design_with_beta(params, self.beta)?.plans())
    }

    fn analytic_cr(&self, params: Params) -> Option<f64> {
        faultline_core::ratio::cr_of_beta(params, self.beta).ok()
    }

    fn horizon_hint(&self, params: Params, xmax: f64) -> f64 {
        Algorithm::design_with_beta(params, self.beta)
            .and_then(|a| a.required_horizon(xmax.max(1.0 + 1e-6)))
            .unwrap_or(32.0 * xmax)
    }
}

/// The complete algorithm of the paper, dispatching by regime:
/// two-group when `n >= 2f + 2`, proportional `A(n, f)` otherwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PaperStrategy;

impl PaperStrategy {
    /// Creates the strategy.
    #[must_use]
    pub fn new() -> Self {
        PaperStrategy
    }
}

impl Strategy for PaperStrategy {
    fn name(&self) -> &'static str {
        "paper"
    }

    fn description(&self) -> String {
        "the paper's algorithm: two-group for n >= 2f+2, proportional A(n, f) otherwise".to_owned()
    }

    fn plans(&self, params: Params) -> Result<Vec<Box<dyn TrajectoryPlan>>> {
        Ok(Algorithm::design(params)?.plans())
    }

    fn analytic_cr(&self, params: Params) -> Option<f64> {
        Some(faultline_core::ratio::cr_upper(params))
    }

    fn horizon_hint(&self, params: Params, xmax: f64) -> f64 {
        Algorithm::design(params)
            .and_then(|a| a.required_horizon(xmax.max(1.0 + 1e-6)))
            .unwrap_or(32.0 * xmax)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_core::coverage::Fleet;

    #[test]
    fn proportional_rejects_two_group_regime() {
        let strategy = ProportionalStrategy::new();
        assert!(strategy.plans(Params::new(4, 1).unwrap()).is_err());
        assert!(strategy.analytic_cr(Params::new(4, 1).unwrap()).is_none());
    }

    #[test]
    fn paper_strategy_handles_both_regimes() {
        let strategy = PaperStrategy::new();
        let trivial = Params::new(4, 1).unwrap();
        assert_eq!(strategy.analytic_cr(trivial), Some(1.0));
        assert_eq!(strategy.plans(trivial).unwrap().len(), 4);

        let hard = Params::new(3, 1).unwrap();
        let cr = strategy.analytic_cr(hard).unwrap();
        assert!((cr - 5.233).abs() < 1e-3);
    }

    #[test]
    fn fixed_beta_matches_optimal_at_beta_star() {
        let params = Params::new(3, 1).unwrap();
        let optimal = ProportionalStrategy::new();
        let fixed = FixedBetaStrategy::new(5.0 / 3.0).unwrap();
        let a = optimal.analytic_cr(params).unwrap();
        let b = fixed.analytic_cr(params).unwrap();
        assert!((a - b).abs() < 1e-12);
        assert_eq!(fixed.beta(), 5.0 / 3.0);
    }

    #[test]
    fn fixed_beta_is_worse_off_optimum() {
        let params = Params::new(3, 1).unwrap();
        let optimal_cr = ProportionalStrategy::new().analytic_cr(params).unwrap();
        for beta in [1.2, 2.5, 4.0] {
            let cr = FixedBetaStrategy::new(beta).unwrap().analytic_cr(params).unwrap();
            assert!(cr > optimal_cr, "beta = {beta}");
        }
        assert!(FixedBetaStrategy::new(1.0).is_err());
    }

    #[test]
    fn fixed_beta_fleet_respects_its_analytic_cr() {
        let params = Params::new(3, 1).unwrap();
        let strategy = FixedBetaStrategy::new(2.5).unwrap();
        let plans = strategy.plans(params).unwrap();
        let horizon = strategy.horizon_hint(params, 20.0);
        let fleet = Fleet::from_plans(&plans, horizon).unwrap();
        let cr = strategy.analytic_cr(params).unwrap();
        for x in [1.0, -2.0, 5.5, -19.0] {
            let t = fleet.visit_time(x, 2).unwrap();
            assert!(t / x.abs() <= cr + 1e-9, "x = {x}");
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ProportionalStrategy::new().name(), "proportional");
        assert_eq!(PaperStrategy::new().name(), "paper");
        assert_eq!(FixedBetaStrategy::new(2.0).unwrap().name(), "fixed-beta");
    }
}
