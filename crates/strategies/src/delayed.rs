//! Time-staggered baselines: spread the robots in *time* rather than in
//! space.
//!
//! A natural first idea for tolerating faults is to keep the optimal
//! single-robot trajectory but launch the robots at staggered times (or
//! mirrored), so that the `(f+1)`-st visit of any point lags the first
//! by a bounded delay. These baselines make that idea concrete — and
//! measurably worse than the paper's proportional schedules, which
//! spread robots in space at zero marginal delay.

use faultline_core::{Error, Params, PiecewiseTrajectory, Result, SpaceTime, TrajectoryPlan};

use crate::doubling::GeometricSweepPlan;
use crate::Strategy;

/// A plan that holds at the origin until `delay`, then runs an inner
/// plan shifted in time.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayedPlan<P> {
    inner: P,
    delay: f64,
}

impl<P: TrajectoryPlan> DelayedPlan<P> {
    /// Wraps `inner` with a start delay.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] for a negative or non-finite delay.
    pub fn new(inner: P, delay: f64) -> Result<Self> {
        if !(delay >= 0.0) || !delay.is_finite() {
            return Err(Error::domain(format!(
                "start delay must be finite and non-negative, got {delay}"
            )));
        }
        Ok(DelayedPlan { inner, delay })
    }

    /// The start delay.
    #[must_use]
    pub fn delay(&self) -> f64 {
        self.delay
    }
}

impl<P: TrajectoryPlan> TrajectoryPlan for DelayedPlan<P> {
    fn materialize(&self, horizon: f64) -> Result<PiecewiseTrajectory> {
        if self.delay == 0.0 {
            return self.inner.materialize(horizon);
        }
        if horizon <= self.delay {
            // Not yet launched: parked at the origin.
            return PiecewiseTrajectory::new(vec![
                SpaceTime::origin(),
                SpaceTime::new(0.0, horizon),
            ]);
        }
        let inner = self.inner.materialize(horizon - self.delay)?;
        let mut waypoints = vec![SpaceTime::origin()];
        for (i, p) in inner.waypoints().iter().enumerate() {
            // The inner plan starts at the origin; skip its t = 0 point
            // (replaced by our hold segment) and shift the rest.
            if i == 0 && p.t == 0.0 && p.x == 0.0 {
                waypoints.push(SpaceTime::new(0.0, self.delay));
                continue;
            }
            waypoints.push(SpaceTime::new(p.x, p.t + self.delay));
        }
        PiecewiseTrajectory::new(waypoints)
    }

    fn label(&self) -> String {
        format!("{} delayed by {}", self.inner.label(), self.delay)
    }
}

/// All robots run the classic doubling trajectory, robot `i` launching
/// at time `i * delay`.
///
/// The `(f+1)`-st visit of any point lags the herd's first visit by
/// exactly `f * delay`, so the competitive ratio is
/// `sup_x (W(x) + f·delay)/x` — strictly worse than the herd's 9 for
/// any positive delay, and unboundedly worse as `delay` grows. Spreading
/// in time buys nothing; the paper spreads in space instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayedDoublingStrategy {
    delay: f64,
}

impl DelayedDoublingStrategy {
    /// Creates the strategy with the given per-robot launch delay.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Domain`] for a negative or non-finite delay.
    pub fn new(delay: f64) -> Result<Self> {
        if !(delay >= 0.0) || !delay.is_finite() {
            return Err(Error::domain(format!("delay must be >= 0, got {delay}")));
        }
        Ok(DelayedDoublingStrategy { delay })
    }

    /// The per-robot launch delay.
    #[must_use]
    pub fn delay(&self) -> f64 {
        self.delay
    }
}

impl Strategy for DelayedDoublingStrategy {
    fn name(&self) -> &'static str {
        "delayed-doubling"
    }

    fn description(&self) -> String {
        format!(
            "classic doubling, robot i launches at t = i * {} (spreads robots in time)",
            self.delay
        )
    }

    fn plans(&self, params: Params) -> Result<Vec<Box<dyn TrajectoryPlan>>> {
        (0..params.n())
            .map(|i| {
                let plan = DelayedPlan::new(
                    GeometricSweepPlan::classic_doubling(),
                    i as f64 * self.delay,
                )?;
                Ok(Box::new(plan) as Box<dyn TrajectoryPlan>)
            })
            .collect()
    }

    fn analytic_cr(&self, _params: Params) -> Option<f64> {
        None // measured; >= 9 + lag effects
    }

    fn horizon_hint(&self, params: Params, xmax: f64) -> f64 {
        20.0 * xmax + params.n() as f64 * self.delay
    }
}

/// Robots work in mirrored pairs: pair `j` runs classic doubling with
/// robot `2j` starting rightwards and robot `2j + 1` starting leftwards
/// (a leftover odd robot joins rightwards).
///
/// Mirroring halves the first-visit time on the "wrong" side but the
/// two members of a pair still visit any fixed point at well-separated
/// times, so the fault-tolerant ratio remains doubling-like.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MirroredPairsStrategy;

impl MirroredPairsStrategy {
    /// Creates the strategy.
    #[must_use]
    pub fn new() -> Self {
        MirroredPairsStrategy
    }
}

impl Strategy for MirroredPairsStrategy {
    fn name(&self) -> &'static str {
        "mirrored-pairs"
    }

    fn description(&self) -> String {
        "doubling in mirrored pairs: even robots start right, odd robots start left".to_owned()
    }

    fn plans(&self, params: Params) -> Result<Vec<Box<dyn TrajectoryPlan>>> {
        (0..params.n())
            .map(|i| {
                let first = if i % 2 == 0 { 1.0 } else { -1.0 };
                Ok(Box::new(GeometricSweepPlan::new(first, 2.0)?) as Box<dyn TrajectoryPlan>)
            })
            .collect()
    }

    fn analytic_cr(&self, _params: Params) -> Option<f64> {
        None
    }

    fn horizon_hint(&self, _params: Params, xmax: f64) -> f64 {
        40.0 * xmax
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultline_core::coverage::Fleet;
    use faultline_core::IdlePlan;

    #[test]
    fn delayed_plan_holds_then_runs() {
        let plan = DelayedPlan::new(GeometricSweepPlan::classic_doubling(), 3.0).unwrap();
        let traj = plan.materialize(20.0).unwrap();
        assert_eq!(traj.position_at(2.0), Some(0.0));
        assert_eq!(traj.position_at(4.0), Some(1.0)); // launched at t = 3
        assert_eq!(traj.first_visit(1.0), Some(4.0));
        assert_eq!(traj.horizon(), 20.0);
    }

    #[test]
    fn delayed_plan_zero_delay_is_identity() {
        let inner = GeometricSweepPlan::classic_doubling();
        let plan = DelayedPlan::new(inner, 0.0).unwrap();
        assert_eq!(plan.materialize(10.0).unwrap(), inner.materialize(10.0).unwrap());
    }

    #[test]
    fn delayed_plan_before_launch() {
        let plan = DelayedPlan::new(IdlePlan::new(), 5.0).unwrap();
        let traj = plan.materialize(2.0).unwrap();
        assert_eq!(traj.position_at(2.0), Some(0.0));
    }

    #[test]
    fn delayed_plan_validates() {
        assert!(DelayedPlan::new(IdlePlan::new(), -1.0).is_err());
        assert!(DelayedDoublingStrategy::new(f64::NAN).is_err());
    }

    #[test]
    fn delayed_doubling_lags_by_f_delays() {
        let params = Params::new(3, 2).unwrap();
        let strategy = DelayedDoublingStrategy::new(0.5).unwrap();
        let plans = strategy.plans(params).unwrap();
        let fleet = Fleet::from_plans(&plans, strategy.horizon_hint(params, 40.0)).unwrap();
        // T_3(x) = herd first visit + 2 * 0.5 exactly.
        let herd = GeometricSweepPlan::classic_doubling().materialize(1_000.0).unwrap();
        for x in [1.5, -3.0, 7.0] {
            let lagged = fleet.visit_time(x, 3).unwrap();
            let base = herd.first_visit(x).unwrap();
            assert!((lagged - (base + 1.0)).abs() < 1e-9, "x = {x}");
        }
    }

    #[test]
    fn delayed_doubling_is_worse_than_paper() {
        let params = Params::new(3, 1).unwrap();
        let strategy = DelayedDoublingStrategy::new(1.0).unwrap();
        let m = super::tests_support::measure(&strategy, params, 40.0).expect("measurable");
        let paper = faultline_core::ratio::cr_upper(params);
        assert!(m > paper, "delayed doubling {m} should lose to the paper {paper}");
    }

    #[test]
    fn mirrored_pairs_cover_both_sides_quickly() {
        let params = Params::new(4, 1).unwrap();
        let plans = MirroredPairsStrategy::new().plans(params).unwrap();
        let fleet = Fleet::from_plans(&plans, 200.0).unwrap();
        // Both sides get a first visit at distance-time 1 for |x| = 1.
        assert_eq!(fleet.visit_time(1.0, 1), Some(1.0));
        assert_eq!(fleet.visit_time(-1.0, 1), Some(1.0));
        // Two robots per side arrive simultaneously (the pairs overlap),
        // so the 2nd distinct visit is also at t = 1.
        assert_eq!(fleet.visit_time(1.0, 2), Some(1.0));
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use faultline_core::coverage::Fleet;

    /// Measures the worst ratio of a strategy over a coarse adversarial
    /// grid (test helper shared by baseline comparisons).
    pub fn measure(strategy: &dyn Strategy, params: Params, xmax: f64) -> Option<f64> {
        let plans = strategy.plans(params).ok()?;
        let fleet = Fleet::from_plans(&plans, strategy.horizon_hint(params, xmax)).ok()?;
        let turning: Vec<f64> =
            fleet.trajectories().iter().flat_map(|t| t.turning_points()).map(|p| p.x).collect();
        let targets =
            faultline_core::coverage::adversarial_targets(&turning, xmax, 48, 1e-9).ok()?;
        let scan = fleet.supremum(&targets, params.required_visits()).ok()?;
        Some(scan.ratio)
    }
}
