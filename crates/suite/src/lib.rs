//! # faultline-suite
//!
//! Facade crate for the `faultline` workspace: re-exports the full
//! stack so downstream users (and the repository-level examples and
//! integration tests) can depend on a single crate.
//!
//! * [`core`](faultline_core) — algorithms, schedules, bounds.
//! * [`sim`](faultline_sim) — the discrete-event simulator.
//! * [`strategies`](faultline_strategies) — strategy library.
//! * [`analysis`](faultline_analysis) — table/figure regeneration.
//! * [`opt`](faultline_opt) — the Theorem 1 / Theorem 2 gap optimizer.
//! * [`conformance`](faultline_conformance) — cross-layer differential
//!   oracle harness.
//! * [`explore`](faultline_explore) — systematic fault/adversary-space
//!   exploration with dominance pruning and certified enclosures.
//!
//! ```
//! use faultline_suite::prelude::*;
//!
//! let params = Params::new(3, 1)?;
//! let algorithm = Algorithm::design(params)?;
//! assert!((algorithm.analytic_cr() - 5.233).abs() < 1e-3);
//! # Ok::<(), faultline_suite::core::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use faultline_analysis as analysis;
/// Declarative scenario documents (moved to `faultline-analysis` so the
/// query service can dispatch scenarios as a library; re-exported here
/// for compatibility).
pub use faultline_analysis::scenario;
pub use faultline_conformance as conformance;
pub use faultline_core as core;
pub use faultline_explore as explore;
pub use faultline_opt as opt;
/// The versioned heterogeneous-scenario DSL (per-robot speeds,
/// activation schedules, fault onsets, line/half-line geometry).
pub use faultline_scenario as scenario_dsl;
pub use faultline_sim as sim;
pub use faultline_strategies as strategies;

/// The most commonly used items across the stack.
pub mod prelude {
    pub use faultline_analysis::{measure_strategy_cr, MeasuredCr};
    pub use faultline_core::{
        Algorithm, Cone, Fleet, Params, ProportionalSchedule, Regime, TrajectoryPlan, ZigZagPlan,
    };
    pub use faultline_sim::{
        worst_case_outcome, FaultMask, SearchOutcome, SimConfig, Simulation, Target,
    };
    pub use faultline_strategies::{all_strategies, strategy_by_name, PaperStrategy, Strategy};

    pub use crate::scenario::{Scenario, ScenarioResult};
    pub use crate::scenario_dsl::ScenarioDoc;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let params = Params::new(5, 2).unwrap();
        let alg = Algorithm::design(params).unwrap();
        assert_eq!(alg.plans().len(), 5);
    }
}
