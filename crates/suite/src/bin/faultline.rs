//! `faultline` — command-line interface to the faulty-robot line
//! search stack.
//!
//! ```text
//! faultline design <n> <f>                      # design + inspect A(n, f)
//! faultline simulate <n> <f> <target> [faulty robots: i,j,...]
//! faultline bounds <n> <f>                      # upper & lower bounds
//! faultline compare <n> <f> [xmax]              # all strategies, measured
//! faultline spectrum <n> <f> [xmax]             # CR_k for k = 1..n
//! faultline animate <n> <f> <dt> <until> <file> # CSV position samples
//! faultline optimize <n> <f> [--budget=..]      # Thm 1 / Thm 2 gap probe
//! faultline explore  <n> <f> [--budget=..]      # adversary-space coverage sweep
//! faultline conformance run [--seed=..]         # differential oracle sweep
//! faultline conformance replay <file.json>      # reproduce a counterexample
//! faultline serve [--addr=..] [--shards=..]     # HTTP query service
//! faultline query <route> [json]                # loopback client
//! faultline loadgen [--quick] [--seed=..]       # seeded load driver
//! ```

use std::process::ExitCode;

use faultline_suite::analysis::ascii::render_table;
use faultline_suite::analysis::group_search;
use faultline_suite::analysis::measure_strategy_cr;
use faultline_suite::core::{lower_bound, ratio, Algorithm, Params, Regime};
use faultline_suite::sim::engine::SimConfig;
use faultline_suite::sim::{
    sample_positions, snapshots_to_csv, worst_case_outcome, FaultMask, Simulation, Target,
};
use faultline_suite::strategies::{all_strategies, PaperStrategy};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("faultline: {e}");
            // `query` mirrors the server's retryable statuses as
            // distinct exit codes (503 -> 3, 504 -> 4) so scripts can
            // back off and retry instead of treating them as usage
            // errors; no usage dump for those.
            if let Some(status) = e.downcast_ref::<StatusError>() {
                return ExitCode::from(status.exit_code());
            }
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// An HTTP error status from `faultline query`, carried as a typed
/// error so `main` can map retryable statuses onto dedicated exit
/// codes: 503 (backpressure) -> 3, 504 (deadline) -> 4, anything else
/// -> 2.
#[derive(Debug)]
struct StatusError {
    method: &'static str,
    route: String,
    status: u16,
}

impl StatusError {
    fn exit_code(&self) -> u8 {
        match self.status {
            503 => 3,
            504 => 4,
            _ => 2,
        }
    }
}

impl std::fmt::Display for StatusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} answered {}", self.method, self.route, self.status)?;
        match self.status {
            503 => write!(f, " (server saturated; retry after backing off)"),
            504 => write!(f, " (deadline expired; the result may be cached on retry)"),
            _ => Ok(()),
        }
    }
}

impl std::error::Error for StatusError {}

const USAGE: &str = "usage:
  faultline design   <n> <f>
  faultline simulate <n> <f> <target> [faulty: i,j,...]
  faultline bounds   <n> <f>
  faultline compare  <n> <f> [xmax]
  faultline spectrum <n> <f> [xmax]
  faultline animate  <n> <f> <dt> <until> <file.csv>
  faultline timeline <n> <f> [horizon] [target]
  faultline scenario <file.json>             (legacy scenario or trace)
  faultline scenario run      <file.json>    (versioned, legacy, or trace)
  faultline scenario validate <file.json>    (exit 0 valid / 2 invalid)
  faultline replay   <trace.json>
  faultline optimize <n> <f> [--budget=tiny|small|medium|large] [--seed=N]
                     [--xmax=X] [--grid=N] [--checkpoint=FILE]
                     [--resume=FILE] [--json] [--check]
  faultline explore  <n> <f> [--xmax=X] [--budget=N] [--seed=N] [--exhaustive]
                     [--json] [--out=FILE.csv]
  faultline conformance run [--seed=N] [--cases=N] [--budget=smoke|default|deep]
                     [--json] [--out=DIR] [--inject=ORACLE]
  faultline conformance replay <counterexample.json>
  faultline serve    [--addr=HOST:PORT] [--threads=N] [--cache-bytes=N]
                     [--queue=N] [--timeout-secs=N] [--shards=N]
                     [--reuse-port] [--memo-max-n=N]
                     (--shards=N supervises N SO_REUSEPORT processes;
                      needs an explicit port)
  faultline query    <route> [json body] [--addr=HOST:PORT]
                     (exit 3 on 503 backpressure, 4 on 504 deadline)
  faultline loadgen  [--quick] [--seed=N] [--requests=N] [--concurrency=N]
                     [--shards=N] [--addr=HOST:PORT] [--out=FILE] [--force]
                     [--baseline=LOAD_date.json] [--json]";

fn run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let command = args.first().map(String::as_str).ok_or("missing command")?;
    match command {
        "design" => design(parse_params(args)?),
        "simulate" => simulate(parse_params(args)?, &args[3..]),
        "bounds" => bounds(parse_params(args)?),
        "compare" => compare(parse_params(args)?, parse_xmax(args, 3)?),
        "spectrum" => spectrum(parse_params(args)?, parse_xmax(args, 3)?),
        "animate" => animate(parse_params(args)?, &args[3..]),
        "timeline" => timeline(parse_params(args)?, &args[3..]),
        "scenario" => scenario(&args[1..]),
        "replay" => replay(&args[1..]),
        "optimize" => optimize(&args[1..]),
        "explore" => explore(&args[1..]),
        "conformance" => conformance(&args[1..]),
        "serve" => serve(&args[1..]),
        "query" => query(&args[1..]),
        "loadgen" => loadgen(&args[1..]),
        other => Err(format!("unknown command `{other}`").into()),
    }
}

fn parse_params(args: &[String]) -> Result<Params, Box<dyn std::error::Error>> {
    let n: usize = args.get(1).ok_or("missing <n>")?.parse()?;
    let f: usize = args.get(2).ok_or("missing <f>")?.parse()?;
    Ok(Params::new(n, f)?)
}

fn parse_xmax(args: &[String], idx: usize) -> Result<f64, Box<dyn std::error::Error>> {
    match args.get(idx) {
        Some(s) => Ok(s.parse()?),
        None => Ok(25.0),
    }
}

fn design(params: Params) -> Result<(), Box<dyn std::error::Error>> {
    let alg = Algorithm::design(params)?;
    println!("{}", alg.describe());
    if let Some(schedule) = alg.schedule() {
        println!("proportionality ratio r = {:.6}", schedule.ratio());
        println!();
        println!("robot seeds (Definition 4):");
        for (i, plan) in alg.plans().iter().enumerate() {
            println!("  a{i}: {}", plan.label());
        }
        println!();
        println!("first interleaved turning points tau_j = r^j:");
        let rows: Vec<Vec<String>> = schedule
            .interleaved_turning_points(2 * params.n())
            .into_iter()
            .enumerate()
            .map(|(j, (robot, p))| {
                vec![
                    j.to_string(),
                    format!("a{robot}"),
                    format!("{:.6}", p.x),
                    format!("{:.6}", p.t),
                ]
            })
            .collect();
        print!("{}", render_table(&["j", "robot", "tau_j", "time"], &rows));
    }
    Ok(())
}

fn simulate(params: Params, rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let target: f64 = rest.first().ok_or("missing <target>")?.parse()?;
    let target = Target::new(target)?;
    let alg = Algorithm::design(params)?;
    let horizon = alg.required_horizon(target.distance() * 1.5 + 2.0)?;
    let trajectories =
        alg.plans().iter().map(|p| p.materialize(horizon)).collect::<Result<Vec<_>, _>>()?;

    let outcome = match rest.get(1) {
        Some(list) => {
            let faulty: Vec<usize> = list
                .split(',')
                .filter(|s| !s.is_empty())
                .map(str::parse)
                .collect::<Result<_, _>>()?;
            if faulty.len() > params.f() {
                return Err(format!(
                    "{} faults exceed the tolerance f = {}",
                    faulty.len(),
                    params.f()
                )
                .into());
            }
            let mask = FaultMask::from_indices(params.n(), &faulty)?;
            Simulation::new(trajectories, target, &mask, SimConfig::default())?.run()
        }
        None => {
            println!("(no fault set given: using the worst-case adversary)");
            worst_case_outcome(trajectories, target, params.f(), SimConfig::default())?
        }
    };

    println!("search for {target} with {params}:");
    for v in &outcome.visits {
        println!(
            "  t = {:10.4}  a{} {}",
            v.time,
            v.robot.0,
            if v.reliable { "DETECTS the target" } else { "passes (faulty)" }
        );
    }
    match &outcome.detection {
        Some(d) => println!(
            "detected by a{} at t = {:.4}; ratio {:.4} (guarantee {:.4})",
            d.robot.0,
            d.time,
            outcome.ratio(),
            alg.analytic_cr()
        ),
        None => println!("NOT detected within horizon {horizon}"),
    }
    Ok(())
}

fn bounds(params: Params) -> Result<(), Box<dyn std::error::Error>> {
    println!("{params} — regime: {}", params.regime());
    println!("upper bound (Theorem 1):  {:.6}", ratio::cr_upper(params));
    println!("lower bound (Section 4):  {:.6}", lower_bound::lower_bound(params)?);
    if params.regime() == Regime::Proportional {
        println!("optimal beta*:            {:.6}", ratio::optimal_beta(params)?);
        println!("expansion factor:         {:.6}", ratio::expansion_factor(params)?);
        println!("proportionality ratio r:  {:.6}", ratio::proportionality_ratio(params)?);
    }
    Ok(())
}

fn compare(params: Params, xmax: f64) -> Result<(), Box<dyn std::error::Error>> {
    println!("measured competitive ratios at {params}, targets up to ±{xmax}:");
    let mut rows = Vec::new();
    for strategy in all_strategies() {
        let row = match measure_strategy_cr(strategy.as_ref(), params, xmax, 64) {
            Ok(m) if m.empirical.is_finite() => {
                vec![
                    strategy.name().to_owned(),
                    m.analytic.map_or("-".into(), |v| format!("{v:.4}")),
                    format!("{:.4}", m.empirical),
                    format!("{:+.4}", m.argmax),
                ]
            }
            Ok(m) => vec![
                strategy.name().to_owned(),
                m.analytic.map_or("-".into(), |v| format!("{v:.4}")),
                "unbounded".into(),
                format!("{} targets uncovered", m.uncovered),
            ],
            Err(e) => vec![strategy.name().to_owned(), "-".into(), "-".into(), e.to_string()],
        };
        rows.push(row);
    }
    print!("{}", render_table(&["strategy", "analytic", "measured", "worst target"], &rows));
    Ok(())
}

fn spectrum(params: Params, xmax: f64) -> Result<(), Box<dyn std::error::Error>> {
    println!("arrival-index spectrum CR_k at {params} (k = f+1 is the paper's objective):");
    let spectrum = group_search::k_spectrum(&PaperStrategy::new(), params, xmax, 48)?;
    let rows: Vec<Vec<String>> = spectrum
        .iter()
        .map(|s| {
            let marker = if s.k == params.required_visits() { " <- f+1" } else { "" };
            vec![format!("{}{marker}", s.k), format!("{:.4}", s.cr)]
        })
        .collect();
    print!("{}", render_table(&["k", "CR_k"], &rows));
    Ok(())
}

fn timeline(params: Params, rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let horizon: f64 = match rest.first() {
        Some(s) => s.parse()?,
        None => 40.0,
    };
    let target: Option<f64> = match rest.get(1) {
        Some(s) => Some(s.parse()?),
        None => None,
    };
    let alg = Algorithm::design(params)?;
    let trajectories =
        alg.plans().iter().map(|p| p.materialize(horizon)).collect::<Result<Vec<_>, _>>()?;
    print!(
        "{}",
        faultline_suite::analysis::timeline::render_timeline(&trajectories, target, 30, 72)?
    );
    Ok(())
}

fn scenario(rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use faultline_suite::scenario_dsl::{is_scenario_value, ScenarioDoc};
    match rest.first().map(String::as_str) {
        Some("run") => {
            let path = rest.get(1).ok_or("missing <file.json>")?;
            let json = std::fs::read_to_string(path)?;
            let results = run_scenario_or_document(&json)?;
            println!("{}", faultline_suite::scenario::results_to_json(&results)?);
            Ok(())
        }
        Some("validate") => {
            let path = rest.get(1).ok_or("missing <file.json>")?;
            let json = std::fs::read_to_string(path)?;
            // Validation is strict: only versioned documents pass, so
            // scripts can gate on the exit code before shipping a file
            // to the query service.
            let doc = ScenarioDoc::from_json(&json)?;
            eprintln!(
                "valid scenario document: version {}, n = {}, f = {}, {} geometry, {} target(s)",
                doc.version,
                doc.n,
                doc.f,
                doc.geometry,
                doc.targets.len()
            );
            Ok(())
        }
        Some(path) => {
            // Bare-file form, kept for compatibility: a legacy
            // scenario or a recorded run trace. Versioned documents
            // are accepted here too.
            let json = std::fs::read_to_string(path)?;
            let value: Result<serde::Value, _> = serde_json::from_str(&json);
            let results = if value.as_ref().map(is_scenario_value).unwrap_or(false) {
                ScenarioDoc::from_json(&json)?.run()?
            } else {
                faultline_suite::scenario::run_document(&json)?
            };
            println!("{}", faultline_suite::scenario::results_to_json(&results)?);
            Ok(())
        }
        None => Err("missing <file.json>".into()),
    }
}

/// Runs a JSON document of any supported kind: a versioned scenario,
/// a legacy scenario, or a recorded run trace.
fn run_scenario_or_document(
    json: &str,
) -> Result<Vec<faultline_suite::scenario::ScenarioResult>, Box<dyn std::error::Error>> {
    use faultline_suite::scenario_dsl::{is_scenario_value, ScenarioDoc};
    let value: Result<serde::Value, _> = serde_json::from_str(json);
    if value.as_ref().map(is_scenario_value).unwrap_or(false) {
        return Ok(ScenarioDoc::from_json(json)?.run()?);
    }
    Ok(faultline_suite::scenario::run_document(json)?)
}

fn replay(rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = rest.first().ok_or("missing <trace.json>")?;
    let json = std::fs::read_to_string(path)?;
    let trace = faultline_suite::sim::RunTrace::from_json(&json)?;
    eprintln!(
        "replaying `{}` ({} robots, target {}, seed {})",
        trace.reason,
        trace.trajectories.len(),
        trace.target,
        trace.seed
    );
    let results = faultline_suite::scenario::run_document(&json)?;
    eprintln!("replay matches the recorded outcome bit-for-bit");
    println!("{}", faultline_suite::scenario::results_to_json(&results)?);
    Ok(())
}

fn optimize(rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use faultline_suite::opt::{self, Budget, Checkpoint, OptimizeConfig};

    let mut budget = Budget::default();
    let mut seed = 0u64;
    let mut xmax: Option<f64> = None;
    let mut grid: Option<usize> = None;
    let mut checkpoint: Option<std::path::PathBuf> = None;
    let mut resume: Option<std::path::PathBuf> = None;
    let mut json = false;
    let mut check = false;
    let mut positional = Vec::new();
    for arg in rest {
        if let Some(v) = arg.strip_prefix("--budget=") {
            budget = v.parse()?;
        } else if let Some(v) = arg.strip_prefix("--seed=") {
            seed = v.parse()?;
        } else if let Some(v) = arg.strip_prefix("--xmax=") {
            xmax = Some(v.parse()?);
        } else if let Some(v) = arg.strip_prefix("--grid=") {
            grid = Some(v.parse()?);
        } else if let Some(v) = arg.strip_prefix("--checkpoint=") {
            checkpoint = Some(v.into());
        } else if let Some(v) = arg.strip_prefix("--resume=") {
            resume = Some(v.into());
        } else if arg == "--json" {
            json = true;
        } else if arg == "--check" {
            check = true;
        } else if arg.starts_with("--") {
            return Err(format!("unknown optimize flag `{arg}`").into());
        } else {
            positional.push(arg.as_str());
        }
    }

    let report = if let Some(path) = resume {
        let mut state = Checkpoint::load(&path)?.into_state();
        if let (Some(n), Some(f)) = (positional.first(), positional.get(1)) {
            let (n, f): (usize, usize) = (n.parse()?, f.parse()?);
            if (n, f) != (state.config.n, state.config.f) {
                return Err(format!(
                    "checkpoint {} is for ({}, {}), not ({n}, {f})",
                    path.display(),
                    state.config.n,
                    state.config.f
                )
                .into());
            }
        }
        eprintln!(
            "resuming ({}, {}) from {} at round {}/{}",
            state.config.n,
            state.config.f,
            path.display(),
            state.round,
            state.config.budget.knobs().rounds
        );
        opt::resume_state(&mut state, checkpoint.as_deref())?
    } else {
        let n: usize = positional.first().ok_or("missing <n>")?.parse()?;
        let f: usize = positional.get(1).ok_or("missing <f>")?.parse()?;
        let mut config = OptimizeConfig::new(n, f);
        config.budget = budget;
        config.seed = seed;
        config.xmax = xmax;
        config.grid_points = grid;
        opt::run_with_checkpoint(&config, checkpoint.as_deref())?
    };

    if json {
        println!("{}", serde_json::to_string_pretty(&report)?);
    } else {
        println!(
            "optimize ({}, {}) — regime {}, budget {}, seed {}",
            report.n, report.f, report.regime, report.budget, report.seed
        );
        println!(
            "  window [1, {:.3}], grid {}, {} starts x {} rounds, {} evaluations",
            report.xmax, report.grid_points, report.starts, report.rounds, report.evaluations
        );
        println!("  Theorem 1 closed form:   {:.9}", report.thm1_cr);
        match report.thm2_alpha {
            Some(a) => println!("  Theorem 2 alpha(n):      {a:.9}"),
            None => println!("  Theorem 2 alpha(n):      - (n >= 2f + 2)"),
        }
        println!("  lower bound (Section 4): {:.9}", report.lower_bound);
        println!("  baseline A(n,f) measured:{:.9}", report.baseline_measured);
        println!("  best found CR:           {:.9}", report.best_found_cr);
        if report.gap_closed {
            println!(
                "  improvement:             closed (Theorem 1 equals the lower bound here, so \
                 in-window gains are finite-window artifacts, not improvements)"
            );
        } else if report.improved {
            println!(
                "  improvement:             {:.9} (strictly better than the A(n,f) baseline)",
                report.improvement
            );
        } else {
            println!(
                "  improvement:             none found at this budget \
                 (delta {:.2e} below the {:.0e} margin)",
                report.improvement,
                opt::IMPROVEMENT_MARGIN
            );
        }
        if let Some(cert) = &report.certificate {
            println!(
                "  certified lower bound:   [{:.9}, {:.9}] ({})",
                cert.lo, cert.hi, cert.quantity
            );
        }
        println!(
            "  cross-check:             {}",
            if report.crosscheck.is_consistent() {
                "consistent (best >= certified lower bound)"
            } else {
                "REJECTED (measurement fell below the certified lower bound)"
            }
        );
    }

    if check {
        if !report.crosscheck.is_consistent() {
            return Err("check failed: best_found_cr fell below the certified lower bound".into());
        }
        if report.best_found_cr > report.thm1_cr + opt::THM1_SLACK {
            return Err(format!(
                "check failed: best_found_cr {} exceeds Theorem 1 {} + {:.0e}",
                report.best_found_cr,
                report.thm1_cr,
                opt::THM1_SLACK
            )
            .into());
        }
        eprintln!("check passed: certified lower bound <= best_found_cr <= Thm 1 + 1e-9");
    }
    Ok(())
}

fn explore(rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use faultline_suite::explore::{explore_pair, ExploreConfig, ExploreReport};

    let mut config = ExploreConfig::default();
    let mut xmax = 25.0f64;
    let mut json = false;
    let mut out: Option<std::path::PathBuf> = None;
    let mut positional = Vec::new();
    for arg in rest {
        if let Some(v) = arg.strip_prefix("--xmax=") {
            xmax = v.parse()?;
        } else if let Some(v) = arg.strip_prefix("--budget=") {
            config.budget = Some(v.parse()?);
        } else if let Some(v) = arg.strip_prefix("--seed=") {
            config.seed = v.parse()?;
        } else if let Some(v) = arg.strip_prefix("--out=") {
            out = Some(v.into());
        } else if arg == "--exhaustive" {
            config.exhaustive = true;
        } else if arg == "--json" {
            json = true;
        } else if arg.starts_with("--") {
            return Err(format!("unknown explore flag `{arg}`").into());
        } else {
            positional.push(arg.as_str());
        }
    }
    let n: usize = positional.first().ok_or("missing <n>")?.parse()?;
    let f: usize = positional.get(1).ok_or("missing <f>")?.parse()?;

    let report = explore_pair(n, f, xmax, &config)?;
    if json {
        println!("{}", report.to_json()?);
    } else {
        println!("{}", report.summary());
        println!(
            "  symmetry: {} robot groups, {} mask classes over {} raw masks \
             ({} further merged by identical covers)",
            report.robot_groups, report.mask_classes, report.mask_count, report.collapsed_covers
        );
        println!(
            "  raw states: {} of {} represented by evaluation ({:.1}% cut)",
            report.raw_covered,
            report.raw_states,
            100.0 * report.raw_cut_fraction()
        );
        println!(
            "  differential: exact supremum {} -> {}",
            report.exact_ratio,
            if report.matches_exact { "matches bit-for-bit" } else { "MISMATCH" }
        );
    }
    if let Some(path) = out {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(&path, format!("{}\n{}\n", ExploreReport::csv_header(), report.csv_row()))?;
        eprintln!("wrote {}", path.display());
    }
    if !report.matches_exact {
        return Err("exploration worst case diverged from the exact supremum".into());
    }
    Ok(())
}

fn conformance(rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use faultline_suite::conformance::{self, ConformanceConfig, Counterexample};

    let sub = rest.first().map(String::as_str).ok_or("missing conformance subcommand")?;
    match sub {
        "run" => {
            let mut config = ConformanceConfig::default();
            let mut json = false;
            let mut out_dir = std::path::PathBuf::from("out/conformance");
            for arg in &rest[1..] {
                if let Some(v) = arg.strip_prefix("--seed=") {
                    config.seed = v.parse()?;
                } else if let Some(v) = arg.strip_prefix("--cases=") {
                    config.cases = v.parse()?;
                } else if let Some(v) = arg.strip_prefix("--budget=") {
                    config.budget = v.parse()?;
                } else if let Some(v) = arg.strip_prefix("--inject=") {
                    config.inject = Some(v.to_owned());
                } else if let Some(v) = arg.strip_prefix("--out=") {
                    out_dir = v.into();
                } else if arg == "--json" {
                    json = true;
                } else {
                    return Err(format!("unknown conformance run flag `{arg}`").into());
                }
            }
            let report = conformance::run(&config)?;
            if json {
                print!("{}", report.to_json()?);
            } else {
                print!("{}", report.render());
            }
            if !report.passed() {
                std::fs::create_dir_all(&out_dir)?;
                for (i, doc) in report.failures.iter().enumerate() {
                    let path = out_dir.join(format!("counterexample_{}_{i}.json", doc.oracle));
                    std::fs::write(&path, doc.to_json()?)?;
                    eprintln!("wrote {}", path.display());
                }
                return Err(format!(
                    "{} oracle violations (replay the counterexamples above with \
                     `faultline conformance replay <file>`)",
                    report.failures.len()
                )
                .into());
            }
        }
        "replay" => {
            let path = rest.get(1).ok_or("missing <counterexample.json>")?;
            let doc = Counterexample::from_json(&std::fs::read_to_string(path)?)?;
            eprintln!(
                "replaying oracle `{}` on case {} of seed {} ({}{})",
                doc.oracle,
                doc.instance.index,
                doc.run_seed,
                doc.instance.regime_label(),
                if doc.injected { ", injected skew" } else { "" },
            );
            doc.replay()?;
            println!(
                "counterexample reproduces bit-for-bit: expected {}, observed {} ({})",
                doc.expected(),
                doc.observed(),
                doc.detail
            );
        }
        other => return Err(format!("unknown conformance subcommand `{other}`").into()),
    }
    Ok(())
}

fn serve(rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use faultline_serve::{signal, ServeConfig, Server};
    let mut config = ServeConfig::default();
    let mut shards = 1usize;
    for arg in rest {
        if let Some(addr) = arg.strip_prefix("--addr=") {
            config.addr = addr.to_owned();
        } else if let Some(threads) = arg.strip_prefix("--threads=") {
            config.threads = Some(threads.parse()?);
        } else if let Some(bytes) = arg.strip_prefix("--cache-bytes=") {
            config.cache_bytes = bytes.parse()?;
        } else if let Some(depth) = arg.strip_prefix("--queue=") {
            config.queue_capacity = depth.parse()?;
        } else if let Some(secs) = arg.strip_prefix("--timeout-secs=") {
            config.request_timeout = std::time::Duration::from_secs(secs.parse()?);
        } else if let Some(n) = arg.strip_prefix("--shards=") {
            shards = n.parse()?;
        } else if let Some(n) = arg.strip_prefix("--memo-max-n=") {
            config.memo_max_n = n.parse()?;
        } else if arg == "--reuse-port" {
            config.reuse_port = true;
        } else {
            return Err(format!("unknown serve flag `{arg}`").into());
        }
    }
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    if shards > 1 {
        return serve_sharded(shards, &config.addr, rest);
    }
    signal::install();
    let server = Server::bind(config.clone())?;
    eprintln!(
        "faultline-serve listening on http://{} ({} workers, {} MiB cache, queue {})",
        server.local_addr()?,
        config.resolved_threads(),
        config.cache_bytes / (1024 * 1024),
        config.queue_capacity,
    );
    eprintln!("routes: /healthz /metrics /v1/cr /v1/table1 /v1/scenario /v1/supremum /v1/optimize");
    let shutdown = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    server.run(shutdown); // returns after SIGINT/SIGTERM + drain
    eprintln!("faultline-serve drained and stopped");
    Ok(())
}

/// Supervises `shards` single-shard child processes sharing one port
/// via SO_REUSEPORT (the kernel balances incoming connections across
/// their listeners). SIGINT/SIGTERM on the supervisor is forwarded to
/// every child as SIGTERM, and the supervisor waits for all of them to
/// drain.
fn serve_sharded(
    shards: usize,
    addr: &str,
    rest: &[String],
) -> Result<(), Box<dyn std::error::Error>> {
    use faultline_serve::{signal, sys};

    // Every shard must bind the *same* concrete port; port 0 would
    // hand each child a different ephemeral port.
    let port = addr.rsplit(':').next().and_then(|p| p.parse::<u16>().ok());
    match port {
        Some(0) | None => {
            return Err(format!(
                "--shards={shards} needs an explicit port in --addr (got `{addr}`)"
            )
            .into())
        }
        Some(_) => {}
    }

    // Children re-run `faultline serve` with the same flags, minus the
    // shard count, plus the reuseport opt-in.
    let exe = std::env::current_exe()?;
    let child_args: Vec<&String> = rest
        .iter()
        .filter(|a| !a.starts_with("--shards=") && a.as_str() != "--reuse-port")
        .collect();
    signal::install();
    let mut children = Vec::with_capacity(shards);
    for shard in 0..shards {
        let child = std::process::Command::new(&exe)
            .arg("serve")
            .args(&child_args)
            .arg("--reuse-port")
            .spawn()
            .map_err(|e| format!("cannot spawn shard {shard}: {e}"))?;
        children.push(child);
    }
    eprintln!("faultline-serve supervising {shards} shards on {addr} (SO_REUSEPORT)");

    let mut forwarded = false;
    let mut failure: Option<String> = None;
    while children.iter_mut().any(|c| matches!(c.try_wait(), Ok(None))) {
        if signal::shutdown_requested() && !forwarded {
            eprintln!("faultline-serve forwarding shutdown to {shards} shards");
            for child in &children {
                let _ = sys::terminate(child.id());
            }
            forwarded = true;
        }
        // A shard dying on its own (bind failure, panic) takes the
        // fleet down: forward termination and report the failure.
        if !forwarded {
            for (shard, child) in children.iter_mut().enumerate() {
                if let Ok(Some(status)) = child.try_wait() {
                    failure = Some(format!("shard {shard} exited early: {status}"));
                }
            }
            if failure.is_some() {
                for child in &children {
                    let _ = sys::terminate(child.id());
                }
                forwarded = true;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    for mut child in children {
        let _ = child.wait();
    }
    match failure {
        Some(message) => Err(message.into()),
        None => {
            eprintln!("faultline-serve shards drained and stopped");
            Ok(())
        }
    }
}

fn loadgen(rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use faultline_serve::loadgen::LoadOptions;

    let mut quick = false;
    let mut json = false;
    let mut force = false;
    let mut out: Option<String> = None;
    let mut against: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut requests: Option<u64> = None;
    let mut concurrency: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut addr: Option<String> = None;
    for arg in rest {
        if let Some(v) = arg.strip_prefix("--seed=") {
            seed = Some(v.parse()?);
        } else if let Some(v) = arg.strip_prefix("--requests=") {
            requests = Some(v.parse()?);
        } else if let Some(v) = arg.strip_prefix("--concurrency=") {
            concurrency = Some(v.parse()?);
        } else if let Some(v) = arg.strip_prefix("--shards=") {
            shards = Some(v.parse()?);
        } else if let Some(v) = arg.strip_prefix("--addr=") {
            addr = Some(v.to_owned());
        } else if let Some(v) = arg.strip_prefix("--out=") {
            out = Some(v.to_owned());
        } else if let Some(v) = arg.strip_prefix("--baseline=") {
            against = Some(v.to_owned());
        } else if arg == "--quick" {
            quick = true;
        } else if arg == "--json" {
            json = true;
        } else if arg == "--force" {
            force = true;
        } else {
            return Err(format!("unknown loadgen flag `{arg}`").into());
        }
    }

    let mut options = LoadOptions::default();
    if quick {
        options = options.quick();
    }
    if let Some(v) = seed {
        options.seed = v;
    }
    if let Some(v) = requests {
        options.requests = v;
    }
    if let Some(v) = concurrency {
        options.concurrency = v;
    }
    if let Some(v) = shards {
        options.shards = v;
    }
    options.addr = addr;

    match &options.addr {
        Some(target) => eprintln!(
            "loadgen: {} requests x {} threads (seed {}) against {target}",
            options.requests, options.concurrency, options.seed
        ),
        None => eprintln!(
            "loadgen: {} requests x {} threads (seed {}) against {} in-process shard(s)",
            options.requests,
            options.concurrency,
            options.seed,
            options.shards.max(1)
        ),
    }
    let report = faultline_bench::run_load(&options, quick)?;
    if json {
        println!("{}", serde_json::to_string_pretty(&report)?);
    } else {
        println!(
            "loadgen: {} requests in {:.0} ms -> {:.0} qps (p50 {:.2} ms, p99 {:.2} ms)",
            report.requests, report.wall_ms, report.qps, report.p50_ms, report.p99_ms
        );
        println!(
            "  statuses: {:?}, errors: {}, digest: {}",
            report.statuses, report.errors, report.digest
        );
    }

    let path = faultline_bench::resolve_out_path(
        out.as_deref(),
        &format!("LOAD_{}.json", report.date),
        force,
    )?;
    std::fs::write(&path, serde_json::to_string_pretty(&report)? + "\n")?;
    eprintln!("(load report written to {})", path.display());

    if let Some(recorded_path) = against {
        println!("== Load gate: vs recorded report {recorded_path} ==");
        let text = std::fs::read_to_string(&recorded_path)
            .map_err(|e| format!("cannot read load report `{recorded_path}`: {e}"))?;
        let recorded: faultline_bench::LoadReport = serde_json::from_str(&text)
            .map_err(|e| format!("cannot parse load report `{recorded_path}`: {e}"))?;
        let comparison = faultline_bench::compare_load(&report, &recorded);
        for line in &comparison.lines {
            println!("  {line}");
        }
        if !comparison.passed() {
            return Err(format!(
                "load gate failed: {} entr{} regressed beyond {:.0}% \
                 (re-record the load report if the regression is intended)",
                comparison.regressions.len(),
                if comparison.regressions.len() == 1 { "y" } else { "ies" },
                faultline_bench::REGRESSION_TOLERANCE * 100.0
            )
            .into());
        }
        println!("load gate passed.");
    }
    Ok(())
}

fn query(rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut addr = faultline_serve::DEFAULT_ADDR.to_owned();
    let mut positional = Vec::new();
    for arg in rest {
        if let Some(a) = arg.strip_prefix("--addr=") {
            addr = a.to_owned();
        } else {
            positional.push(arg.as_str());
        }
    }
    let route = positional.first().ok_or(
        "missing <route> (e.g. /v1/cr?n=3&f=1, or POST bodies: \
         /v1/supremum, /v1/optimize, /v1/scenario)",
    )?;
    let body = positional.get(1).copied();
    let method = if body.is_some() { "POST" } else { "GET" };
    let response = faultline_serve::client::query(&addr, method, route, body)?;
    print!("{}", response.text());
    if response.status >= 400 {
        return Err(Box::new(StatusError {
            method,
            route: (*route).to_owned(),
            status: response.status,
        }));
    }
    Ok(())
}

fn animate(params: Params, rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let dt: f64 = rest.first().ok_or("missing <dt>")?.parse()?;
    let until: f64 = rest.get(1).ok_or("missing <until>")?.parse()?;
    let file = rest.get(2).ok_or("missing <file.csv>")?;
    let alg = Algorithm::design(params)?;
    let trajectories =
        alg.plans().iter().map(|p| p.materialize(until)).collect::<Result<Vec<_>, _>>()?;
    let snaps = sample_positions(&trajectories, dt, until)?;
    std::fs::write(file, snapshots_to_csv(&snaps))?;
    println!("{} snapshots written to {file}", snaps.len());
    Ok(())
}
