//! Raw OS interfaces for the event loop, without a `libc` crate
//! dependency (matching the `signal` module's precedent): `epoll` for
//! readiness notification, `SO_REUSEPORT` listener construction for
//! the shard mode, and `kill(2)` so the shard supervisor can forward
//! SIGTERM to its children. Linux-only, like the service itself.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::unix::io::FromRawFd;
use std::time::Duration;

use std::os::raw::{c_int, c_void};

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

/// Readable readiness (`EPOLLIN`).
pub const EVENT_READ: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EVENT_WRITE: u32 = 0x004;
/// Error condition (`EPOLLERR`), always reported.
pub const EVENT_ERROR: u32 = 0x008;
/// Peer hang-up (`EPOLLHUP`), always reported.
pub const EVENT_HANGUP: u32 = 0x010;

const AF_INET: c_int = 2;
const SOCK_STREAM: c_int = 1;
const SOCK_CLOEXEC: c_int = 0o2000000;
const SOL_SOCKET: c_int = 1;
const SO_REUSEADDR: c_int = 2;
const SO_REUSEPORT: c_int = 15;
const SIGTERM: c_int = 15;
const LISTEN_BACKLOG: c_int = 1024;

/// The kernel's `epoll_event`, packed on x86-64 only (the kernel ABI
/// differs by architecture).
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// The kernel's `epoll_event` on architectures where it is not packed.
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// IPv4 `sockaddr_in`, network byte order for `port` and `addr`.
#[repr(C)]
struct SockAddrIn {
    family: u16,
    port: u16,
    addr: u32,
    zero: [u8; 8],
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: u32,
    ) -> c_int;
    fn bind(fd: c_int, addr: *const SockAddrIn, len: u32) -> c_int;
    fn listen(fd: c_int, backlog: c_int) -> c_int;
    fn kill(pid: c_int, sig: c_int) -> c_int;
}

/// One readiness notification: the registered token and the event mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the file descriptor was registered with (its fd).
    pub token: u64,
    /// Bitwise OR of `EVENT_*` flags.
    pub events: u32,
}

impl Event {
    /// Whether the descriptor is readable (or in an error/hang-up state
    /// that a read will surface).
    #[must_use]
    pub fn readable(self) -> bool {
        self.events & (EVENT_READ | EVENT_ERROR | EVENT_HANGUP) != 0
    }

    /// Whether the descriptor is writable.
    #[must_use]
    pub fn writable(self) -> bool {
        self.events & EVENT_WRITE != 0
    }
}

/// A level-triggered `epoll` instance.
pub struct Poller {
    epfd: c_int,
}

impl Poller {
    /// Creates a new epoll instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failures.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: plain syscall wrapper, no pointers involved.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: c_int, fd: i32, events: u32) -> io::Result<()> {
        let mut event = EpollEvent { events, data: fd as u64 };
        // SAFETY: `event` outlives the call; DEL ignores the pointer on
        // modern kernels but a valid one is passed regardless.
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` for the given event mask (token = fd).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failures.
    pub fn add(&self, fd: i32, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events)
    }

    /// Changes the event mask of a registered `fd`.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failures.
    pub fn set(&self, fd: i32, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events)
    }

    /// Deregisters `fd`.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failures.
    pub fn del(&self, fd: i32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0)
    }

    /// Waits up to `timeout` for readiness events, appending them to
    /// `out`. A signal interruption is reported as zero events.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait` failures other than `EINTR`.
    pub fn wait(&self, timeout: Duration, out: &mut Vec<Event>) -> io::Result<()> {
        const CAPACITY: usize = 256;
        let mut events = [EpollEvent { events: 0, data: 0 }; CAPACITY];
        let timeout_ms = c_int::try_from(timeout.as_millis()).unwrap_or(c_int::MAX);
        // SAFETY: the buffer is valid for CAPACITY entries and the
        // kernel writes at most `maxevents` of them.
        let n =
            unsafe { epoll_wait(self.epfd, events.as_mut_ptr(), CAPACITY as c_int, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for event in events.iter().take(n as usize) {
            // Copy out of the (possibly packed) struct before use.
            let (data, mask) = (event.data, event.events);
            out.push(Event { token: data, events: mask });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: the fd is owned by this Poller and closed exactly once.
        unsafe {
            close(self.epfd);
        }
    }
}

/// Binds an IPv4 TCP listener with `SO_REUSEPORT` (and `SO_REUSEADDR`)
/// set before `bind`, so multiple shard processes — or multiple
/// in-process servers — can share one address and let the kernel
/// load-balance accepted connections across them.
///
/// # Errors
///
/// Rejects non-IPv4 addresses and propagates socket-call failures.
pub fn bind_reuseport(addr: &SocketAddr) -> io::Result<TcpListener> {
    let SocketAddr::V4(v4) = addr else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "shard listeners require an IPv4 address",
        ));
    };
    // SAFETY: each call below is a plain syscall on an owned fd; the fd
    // is closed on every error path before returning.
    unsafe {
        let fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let one: c_int = 1;
        let optlen = std::mem::size_of::<c_int>() as u32;
        for opt in [SO_REUSEADDR, SO_REUSEPORT] {
            if setsockopt(fd, SOL_SOCKET, opt, (&raw const one).cast::<c_void>(), optlen) < 0 {
                let err = io::Error::last_os_error();
                close(fd);
                return Err(err);
            }
        }
        let sockaddr = SockAddrIn {
            family: AF_INET as u16,
            port: v4.port().to_be(),
            addr: u32::from_ne_bytes(v4.ip().octets()),
            zero: [0; 8],
        };
        if bind(fd, &sockaddr, std::mem::size_of::<SockAddrIn>() as u32) < 0 {
            let err = io::Error::last_os_error();
            close(fd);
            return Err(err);
        }
        if listen(fd, LISTEN_BACKLOG) < 0 {
            let err = io::Error::last_os_error();
            close(fd);
            return Err(err);
        }
        Ok(TcpListener::from_raw_fd(fd))
    }
}

/// Sends SIGTERM to a child process (the shard supervisor's graceful
/// drain forwarding; `Child::kill` would send the unmaskable SIGKILL).
///
/// # Errors
///
/// Propagates `kill(2)` failures.
pub fn terminate(pid: u32) -> io::Result<()> {
    // SAFETY: plain syscall wrapper.
    let rc = unsafe { kill(pid as c_int, SIGTERM) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::os::unix::io::AsRawFd;

    #[test]
    fn poller_reports_readability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), EVENT_READ).unwrap();

        let mut events = Vec::new();
        poller.wait(Duration::from_millis(10), &mut events).unwrap();
        assert!(events.is_empty(), "no pending connection yet");

        let mut client = TcpStream::connect(addr).unwrap();
        poller.wait(Duration::from_millis(500), &mut events).unwrap();
        assert!(
            events.iter().any(|e| e.token == listener.as_raw_fd() as u64 && e.readable()),
            "pending accept must wake the poller: {events:?}"
        );

        // Accepted stream readability, then deregistration.
        let (server_side, _) = listener.accept().unwrap();
        poller.add(server_side.as_raw_fd(), EVENT_READ).unwrap();
        client.write_all(b"x").unwrap();
        events.clear();
        poller.wait(Duration::from_millis(500), &mut events).unwrap();
        assert!(events.iter().any(|e| e.token == server_side.as_raw_fd() as u64 && e.readable()));
        poller.del(server_side.as_raw_fd()).unwrap();
    }

    #[test]
    fn reuseport_listeners_share_an_address() {
        let first = bind_reuseport(&"127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = first.local_addr().unwrap();
        let second = bind_reuseport(&addr).expect("second listener on the same port");
        assert_eq!(second.local_addr().unwrap(), addr);

        // A connection lands on one of the two listeners.
        first.set_nonblocking(true).unwrap();
        second.set_nonblocking(true).unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"ping").unwrap();
        let start = std::time::Instant::now();
        let accepted = loop {
            match first.accept() {
                Ok((s, _)) => break s,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => panic!("accept: {e}"),
            }
            match second.accept() {
                Ok((s, _)) => break s,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => panic!("accept: {e}"),
            }
            assert!(start.elapsed() < Duration::from_secs(5), "no listener accepted");
            std::thread::sleep(Duration::from_millis(1));
        };
        let mut accepted = accepted;
        accepted.set_nonblocking(false).unwrap();
        let mut buf = [0u8; 4];
        accepted.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn reuseport_rejects_ipv6() {
        let err = bind_reuseport(&"[::1]:0".parse().unwrap()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
