//! Single-flight request coalescing.
//!
//! A thundering herd of identical cache misses should compute once: the
//! first requester of a key creates a *flight* and submits the one pool
//! job; every later requester of the same key parks on the flight as a
//! waiter instead of submitting anything. When the job finishes (or
//! times out, or bounces off a full queue) the flight *lands* and every
//! waiter receives the byte-identical response.
//!
//! Parking and landing are both atomic under the table lock, so a
//! waiter can never slip onto a flight that already landed (it would
//! hang forever): once [`FlightTable::land`] removes the key, the next
//! [`FlightTable::park`] creates a fresh flight — and by then the cache
//! is warm, so its job answers immediately.
//!
//! Keys are the same canonical cache keys the LRU uses
//! (`route-label|canonical_string`), so "identical request" means
//! identical after default resolution — exactly the dedup rule the
//! cache already implements.

use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Instant;

/// One parked connection awaiting a flight's outcome.
pub struct Waiter {
    /// The connection to answer on (blocking mode, pool-path dialect).
    pub stream: TcpStream,
    /// When this waiter's request was parsed (for its latency metric).
    pub received: Instant,
}

/// Outcome of [`FlightTable::park`].
#[derive(Debug, PartialEq, Eq)]
pub enum Parked {
    /// The caller's waiter created the flight; the caller must submit
    /// the one pool job (or land the flight with an error).
    Created,
    /// The waiter coalesced onto an existing flight; nothing to submit.
    Coalesced,
}

/// All flights currently in the air, keyed on the cache key.
#[derive(Default)]
pub struct FlightTable {
    flights: Mutex<HashMap<String, Vec<Waiter>>>,
}

impl FlightTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> FlightTable {
        FlightTable::default()
    }

    /// Parks a waiter on the flight for `key`, creating the flight if
    /// absent.
    #[must_use]
    pub fn park(&self, key: &str, waiter: Waiter) -> Parked {
        let mut flights = self.flights.lock().expect("flight table poisoned");
        if let Some(waiters) = flights.get_mut(key) {
            waiters.push(waiter);
            return Parked::Coalesced;
        }
        flights.insert(key.to_owned(), vec![waiter]);
        Parked::Created
    }

    /// Lands the flight for `key`: removes it (later requests for the
    /// key start fresh) and returns its waiters for answering.
    /// Idempotent; a second land is empty.
    #[must_use]
    pub fn land(&self, key: &str) -> Vec<Waiter> {
        self.flights.lock().expect("flight table poisoned").remove(key).unwrap_or_default()
    }

    /// The number of flights currently in the air.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.flights.lock().expect("flight table poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn dummy_waiter() -> Waiter {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let _server_side = listener.accept().unwrap();
        Waiter { stream: client, received: Instant::now() }
    }

    #[test]
    fn first_parker_creates_then_others_coalesce() {
        let table = FlightTable::new();
        assert_eq!(table.park("k", dummy_waiter()), Parked::Created);
        for _ in 0..3 {
            assert_eq!(table.park("k", dummy_waiter()), Parked::Coalesced);
        }
        assert_eq!(table.in_flight(), 1);
        let waiters = table.land("k");
        assert_eq!(waiters.len(), 4, "creator + three coalesced waiters");
        assert_eq!(table.in_flight(), 0);
        assert!(table.land("k").is_empty(), "landing is idempotent");
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let table = FlightTable::new();
        assert_eq!(table.park("a", dummy_waiter()), Parked::Created);
        assert_eq!(table.park("b", dummy_waiter()), Parked::Created);
        assert_eq!(table.in_flight(), 2);
        let _ = table.land("a");
        assert_eq!(table.park("a", dummy_waiter()), Parked::Created, "landed keys restart");
    }
}
