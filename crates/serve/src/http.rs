//! Minimal HTTP/1.1 support over `std::net::TcpStream`: request
//! parsing with size limits, percent-decoded query strings, and
//! response writing. One request per connection (`Connection: close`),
//! which keeps the state machine trivial and is exactly what the
//! loopback client and tests speak.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercased.
    pub method: String,
    /// Decoded path without the query string (e.g. `/v1/cr`).
    pub path: String,
    /// Percent-decoded query parameters in request order.
    pub query: Vec<(String, String)>,
    /// Request body (empty when absent).
    pub body: String,
}

impl Request {
    /// The first query parameter named `key`, if present.
    #[must_use]
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// A request that could not be parsed, with the status code to answer.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// HTTP status code to respond with (400 or 413).
    pub status: u16,
    /// Human-readable reason.
    pub message: String,
}

impl ParseError {
    fn bad(message: impl Into<String>) -> Self {
        ParseError { status: 400, message: message.into() }
    }

    fn too_large(message: impl Into<String>) -> Self {
        ParseError { status: 413, message: message.into() }
    }
}

/// Decodes `%XX` escapes and `+` in a query component.
fn percent_decode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h).ok().and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a query string into decoded key/value pairs.
fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

/// Reads and parses one HTTP request from the stream.
///
/// # Errors
///
/// The outer `Err` is an I/O failure (peer went away); the inner
/// [`ParseError`] is a malformed or oversized request that should be
/// answered with its status code.
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Result<Request, ParseError>> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut head_bytes = 0usize;
    reader.read_line(&mut line)?;
    head_bytes += line.len();
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1") => (m.to_uppercase(), t.to_owned()),
        _ => return Ok(Err(ParseError::bad(format!("malformed request line: {}", line.trim())))),
    };

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Ok(Err(ParseError::bad("unexpected end of headers")));
        }
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Ok(Err(ParseError::too_large("request head exceeds 16 KiB")));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = match value.trim().parse() {
                    Ok(v) => v,
                    Err(_) => {
                        return Ok(Err(ParseError::bad(format!(
                            "invalid Content-Length `{}`",
                            value.trim()
                        ))))
                    }
                };
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Ok(Err(ParseError::too_large("request body exceeds 1 MiB")));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = match String::from_utf8(body) {
        Ok(text) => text,
        Err(_) => return Ok(Err(ParseError::bad("request body is not valid UTF-8"))),
    };

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), parse_query(q)),
        None => (target, Vec::new()),
    };
    Ok(Ok(Request { method, path: percent_decode(&path), query, body }))
}

/// The standard reason phrase for the status codes the service emits.
#[must_use]
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes a complete HTTP/1.1 response and flushes the stream.
///
/// # Errors
///
/// Propagates stream write failures (the peer may have hung up).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason_phrase(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    // One vectored buffer, one write: avoids a Nagle/delayed-ACK
    // interaction between a separate head and body segment.
    let mut wire = Vec::with_capacity(head.len() + body.len());
    wire.extend_from_slice(head.as_bytes());
    wire.extend_from_slice(body);
    stream.write_all(&wire)?;
    stream.flush()
}

/// Writes a JSON error body `{"error": ...}` with the given status.
///
/// # Errors
///
/// Propagates stream write failures.
pub fn write_error(
    stream: &mut TcpStream,
    status: u16,
    message: &str,
    extra_headers: &[(&str, String)],
) -> std::io::Result<()> {
    let body = serde_json::to_string(&serde::Value::Object(vec![(
        "error".to_owned(),
        serde::Value::String(message.to_owned()),
    )]))
    .unwrap_or_else(|_| "{\"error\":\"unrepresentable\"}".to_owned())
        + "\n";
    write_response(stream, status, "application/json", extra_headers, body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_strings_decode() {
        let q = parse_query("n=3&f=1&name=two%20words&flag");
        assert_eq!(q[0], ("n".to_owned(), "3".to_owned()));
        assert_eq!(q[2], ("name".to_owned(), "two words".to_owned()));
        assert_eq!(q[3], ("flag".to_owned(), String::new()));
    }

    #[test]
    fn percent_decoding_is_permissive() {
        assert_eq!(percent_decode("a%2Bb"), "a+b");
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
        assert_eq!(percent_decode("trail%"), "trail%");
    }

    #[test]
    fn reason_phrases_cover_service_statuses() {
        for status in [200, 400, 404, 405, 413, 500, 503, 504] {
            assert_ne!(reason_phrase(status), "Unknown", "status {status}");
        }
    }
}
