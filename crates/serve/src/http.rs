//! Minimal HTTP/1.1 support for the event loop: incremental request
//! parsing out of a connection's accumulation buffer (with size
//! limits), percent-decoded query strings, and response serialization.
//! HTTP/1.1 connections are keep-alive by default; `Connection: close`
//! (or HTTP/1.0 without `Connection: keep-alive`) opts out. Responses
//! handed to the worker pool always close — a parked connection has no
//! event-loop state to return to.

use std::io::Write;
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercased.
    pub method: String,
    /// Decoded path without the query string (e.g. `/v1/cr`).
    pub path: String,
    /// Percent-decoded query parameters in request order.
    pub query: Vec<(String, String)>,
    /// Request body (empty when absent).
    pub body: String,
    /// Whether the connection may carry further requests afterwards.
    pub keep_alive: bool,
}

impl Request {
    /// The first query parameter named `key`, if present.
    #[must_use]
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// A request that could not be parsed, with the status code to answer.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// HTTP status code to respond with (400 or 413).
    pub status: u16,
    /// Human-readable reason.
    pub message: String,
}

impl ParseError {
    fn bad(message: impl Into<String>) -> Self {
        ParseError { status: 400, message: message.into() }
    }

    fn too_large(message: impl Into<String>) -> Self {
        ParseError { status: 413, message: message.into() }
    }
}

/// Outcome of attempting to parse one request from a buffer prefix.
#[derive(Debug)]
pub enum Parsed {
    /// More bytes are needed; the buffer is a valid prefix so far.
    Incomplete,
    /// One complete request occupying the first `consumed` bytes.
    Ready {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer this request consumed.
        consumed: usize,
    },
    /// The buffer prefix can never become a valid request.
    Invalid(ParseError),
}

/// Decodes `%XX` escapes and `+` in a query component.
fn percent_decode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h).ok().and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a query string into decoded key/value pairs.
fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

/// Attempts to parse one request from the front of `buf`.
///
/// Incremental: call again with the same (grown) buffer after more
/// bytes arrive. `Ready.consumed` tells the caller how much of the
/// buffer to drain before parsing the next pipelined request.
#[must_use]
pub fn parse_request(buf: &[u8]) -> Parsed {
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        if buf.len() > MAX_HEAD_BYTES {
            return Parsed::Invalid(ParseError::too_large("request head exceeds 16 KiB"));
        }
        return Parsed::Incomplete;
    };
    if head_end + 4 > MAX_HEAD_BYTES {
        return Parsed::Invalid(ParseError::too_large("request head exceeds 16 KiB"));
    }
    let Ok(head) = std::str::from_utf8(&buf[..head_end]) else {
        return Parsed::Invalid(ParseError::bad("request head is not valid UTF-8"));
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1") => {
            (m.to_uppercase(), t.to_owned(), v.to_owned())
        }
        _ => {
            return Parsed::Invalid(ParseError::bad(format!(
                "malformed request line: {}",
                request_line.trim()
            )))
        }
    };

    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";
    for header in lines {
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = match value.parse() {
                    Ok(v) => v,
                    Err(_) => {
                        return Parsed::Invalid(ParseError::bad(format!(
                            "invalid Content-Length `{value}`"
                        )))
                    }
                };
            } else if name.eq_ignore_ascii_case("connection") {
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Parsed::Invalid(ParseError::too_large("request body exceeds 1 MiB"));
    }
    let total = head_end + 4 + content_length;
    if buf.len() < total {
        return Parsed::Incomplete;
    }
    let body = match std::str::from_utf8(&buf[head_end + 4..total]) {
        Ok(text) => text.to_owned(),
        Err(_) => return Parsed::Invalid(ParseError::bad("request body is not valid UTF-8")),
    };

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), parse_query(q)),
        None => (target, Vec::new()),
    };
    Parsed::Ready {
        request: Request { method, path: percent_decode(&path), query, body, keep_alive },
        consumed: total,
    }
}

/// The standard reason phrase for the status codes the service emits.
#[must_use]
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Serializes a complete HTTP/1.1 response into one wire buffer.
#[must_use]
pub fn response_bytes(
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        reason_phrase(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    // One buffer, one write: avoids a Nagle/delayed-ACK interaction
    // between a separate head and body segment.
    let mut wire = Vec::with_capacity(head.len() + body.len());
    wire.extend_from_slice(head.as_bytes());
    wire.extend_from_slice(body);
    wire
}

/// Serializes a JSON error body `{"error": ...}` with the given status.
#[must_use]
pub fn error_bytes(
    status: u16,
    message: &str,
    extra_headers: &[(&str, String)],
    keep_alive: bool,
) -> Vec<u8> {
    let body = serde_json::to_string(&serde::Value::Object(vec![(
        "error".to_owned(),
        serde::Value::String(message.to_owned()),
    )]))
    .unwrap_or_else(|_| "{\"error\":\"unrepresentable\"}".to_owned())
        + "\n";
    response_bytes(status, "application/json", extra_headers, body.as_bytes(), keep_alive)
}

/// Writes a complete HTTP/1.1 response (`Connection: close`) and
/// flushes the stream. Used on the pool path, where the connection has
/// left the event loop for good.
///
/// # Errors
///
/// Propagates stream write failures (the peer may have hung up).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    stream.write_all(&response_bytes(status, content_type, extra_headers, body, false))?;
    stream.flush()
}

/// Writes a JSON error body `{"error": ...}` with the given status
/// (`Connection: close`).
///
/// # Errors
///
/// Propagates stream write failures.
pub fn write_error(
    stream: &mut TcpStream,
    status: u16,
    message: &str,
    extra_headers: &[(&str, String)],
) -> std::io::Result<()> {
    stream.write_all(&error_bytes(status, message, extra_headers, false))?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_strings_decode() {
        let q = parse_query("n=3&f=1&name=two%20words&flag");
        assert_eq!(q[0], ("n".to_owned(), "3".to_owned()));
        assert_eq!(q[2], ("name".to_owned(), "two words".to_owned()));
        assert_eq!(q[3], ("flag".to_owned(), String::new()));
    }

    #[test]
    fn percent_decoding_is_permissive() {
        assert_eq!(percent_decode("a%2Bb"), "a+b");
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
        assert_eq!(percent_decode("trail%"), "trail%");
    }

    #[test]
    fn reason_phrases_cover_service_statuses() {
        for status in [200, 400, 404, 405, 408, 413, 500, 503, 504] {
            assert_ne!(reason_phrase(status), "Unknown", "status {status}");
        }
    }

    #[test]
    fn incremental_parse_waits_for_the_full_request() {
        let wire = b"POST /v1/supremum?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody";
        for cut in 0..wire.len() {
            match parse_request(&wire[..cut]) {
                Parsed::Incomplete => {}
                other => panic!("prefix of {cut} bytes parsed as {other:?}"),
            }
        }
        match parse_request(wire) {
            Parsed::Ready { request, consumed } => {
                assert_eq!(consumed, wire.len());
                assert_eq!(request.method, "POST");
                assert_eq!(request.path, "/v1/supremum");
                assert_eq!(request.query_param("x"), Some("1"));
                assert_eq!(request.body, "body");
                assert!(request.keep_alive, "HTTP/1.1 defaults to keep-alive");
            }
            other => panic!("complete request parsed as {other:?}"),
        }
    }

    #[test]
    fn pipelined_requests_consume_exactly_one_request() {
        let wire = b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        match parse_request(wire) {
            Parsed::Ready { request, consumed } => {
                assert_eq!(request.path, "/healthz");
                assert_eq!(consumed, b"GET /healthz HTTP/1.1\r\n\r\n".len());
                match parse_request(&wire[consumed..]) {
                    Parsed::Ready { request, .. } => assert_eq!(request.path, "/metrics"),
                    other => panic!("second request parsed as {other:?}"),
                }
            }
            other => panic!("first request parsed as {other:?}"),
        }
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let close = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let Parsed::Ready { request, .. } = parse_request(close) else { panic!("parse") };
        assert!(!request.keep_alive);

        let old = b"GET / HTTP/1.0\r\n\r\n";
        let Parsed::Ready { request, .. } = parse_request(old) else { panic!("parse") };
        assert!(!request.keep_alive, "HTTP/1.0 defaults to close");

        let old_keep = b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        let Parsed::Ready { request, .. } = parse_request(old_keep) else { panic!("parse") };
        assert!(request.keep_alive);
    }

    #[test]
    fn oversized_heads_and_bodies_answer_413() {
        let huge_head = format!("GET /?x={} HTTP/1.1\r\n", "a".repeat(MAX_HEAD_BYTES));
        match parse_request(huge_head.as_bytes()) {
            Parsed::Invalid(e) => assert_eq!(e.status, 413),
            other => panic!("oversized head parsed as {other:?}"),
        }
        let huge_body =
            format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        match parse_request(huge_body.as_bytes()) {
            Parsed::Invalid(e) => assert_eq!(e.status, 413),
            other => panic!("oversized body parsed as {other:?}"),
        }
    }

    #[test]
    fn malformed_request_lines_are_invalid_not_incomplete() {
        match parse_request(b"NOT-HTTP\r\n\r\n") {
            Parsed::Invalid(e) => assert_eq!(e.status, 400),
            other => panic!("garbage parsed as {other:?}"),
        }
    }

    #[test]
    fn response_bytes_set_the_connection_header() {
        let keep = response_bytes(200, "application/json", &[], b"{}", true);
        assert!(std::str::from_utf8(&keep).unwrap().contains("Connection: keep-alive\r\n"));
        let close = response_bytes(200, "application/json", &[], b"{}", false);
        assert!(std::str::from_utf8(&close).unwrap().contains("Connection: close\r\n"));
    }
}
