//! Bounded worker pool with an admission queue.
//!
//! The accept loop resolves and validates requests, then submits a
//! [`Job`] here. `try_submit` never blocks: when the queue is at
//! capacity the caller answers `503 Service Unavailable` with a
//! `Retry-After` header instead (backpressure, not buffering).
//!
//! Each worker executes one job at a time. The job's compute closure
//! runs on a watchdog thread so the worker can enforce the per-request
//! deadline with `recv_timeout`: on expiry the client gets
//! `504 Gateway Timeout` immediately while the abandoned computation
//! finishes in the background and still warms the response cache (the
//! closure inserts its result itself).

use std::collections::VecDeque;
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::http;
use crate::metrics::Metrics;
use crate::ServeError;

/// An admitted request waiting for (or undergoing) computation.
pub struct Job {
    /// The connection to answer on.
    pub stream: TcpStream,
    /// Route label for metrics.
    pub route: &'static str,
    /// Computes the response body (and inserts it into the cache).
    pub compute: Box<dyn FnOnce() -> Result<Vec<u8>, ServeError> + Send>,
    /// When the request was read off the socket.
    pub received: Instant,
    /// Admission deadline; expired jobs answer 504 without computing.
    pub deadline: Instant,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct QueueInner {
    state: Mutex<QueueState>,
    available: Condvar,
    capacity: usize,
    metrics: Arc<Metrics>,
}

/// The bounded worker pool. Shared behind an `Arc` between the accept
/// loop (drain) and per-connection threads (submit).
pub struct WorkerPool {
    inner: Arc<QueueInner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawns `threads` workers sharing an admission queue of
    /// `capacity` jobs.
    #[must_use]
    pub fn new(threads: usize, capacity: usize, metrics: Arc<Metrics>) -> Self {
        let inner = Arc::new(QueueInner {
            state: Mutex::new(QueueState { jobs: VecDeque::new(), closed: false }),
            available: Condvar::new(),
            capacity: capacity.max(1),
            metrics,
        });
        let handles = (0..threads.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("faultline-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawning a pool worker cannot fail")
            })
            .collect();
        WorkerPool { inner, handles: Mutex::new(handles) }
    }

    /// Admits a job without blocking.
    ///
    /// # Errors
    ///
    /// Returns the job back when the queue is at capacity or the pool
    /// is draining; the caller answers 503.
    pub fn try_submit(&self, job: Job) -> Result<(), Job> {
        let mut state = self.inner.state.lock().expect("pool queue poisoned");
        if state.closed || state.jobs.len() >= self.inner.capacity {
            return Err(job);
        }
        state.jobs.push_back(job);
        self.inner.metrics.set_queue_depth(state.jobs.len());
        drop(state);
        self.inner.available.notify_one();
        Ok(())
    }

    /// The number of jobs currently queued (not yet picked up).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.inner.state.lock().expect("pool queue poisoned").jobs.len()
    }

    /// Graceful drain: stops admitting, lets the workers finish every
    /// queued and in-flight job, then joins them. Idempotent.
    pub fn drain(&self) {
        {
            let mut state = self.inner.state.lock().expect("pool queue poisoned");
            state.closed = true;
        }
        self.inner.available.notify_all();
        let handles: Vec<_> =
            self.handles.lock().expect("pool handles poisoned").drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &QueueInner) {
    loop {
        let job = {
            let mut state = inner.state.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    inner.metrics.set_queue_depth(state.jobs.len());
                    break job;
                }
                if state.closed {
                    return;
                }
                state = inner.available.wait(state).expect("pool queue poisoned");
            }
        };
        inner.metrics.worker_busy();
        execute(job, &inner.metrics);
        inner.metrics.worker_idle();
    }
}

/// Runs one job under its deadline and writes the response.
fn execute(job: Job, metrics: &Metrics) {
    let Job { mut stream, route, compute, received, deadline } = job;
    let now = Instant::now();
    let status = if now >= deadline {
        let _ = http::write_error(&mut stream, 504, "deadline exceeded while queued", &[]);
        504
    } else {
        let (tx, rx) = channel();
        // The watchdog thread owns the computation; if the deadline
        // fires first the result is dropped but the closure has already
        // warmed the cache for the next request.
        let spawned = std::thread::Builder::new().name("faultline-serve-compute".to_owned()).spawn(
            move || {
                let _ = tx.send(catch_unwind(AssertUnwindSafe(compute)));
            },
        );
        match spawned {
            Err(e) => {
                let _ =
                    http::write_error(&mut stream, 500, &format!("cannot spawn compute: {e}"), &[]);
                500
            }
            Ok(_) => match rx.recv_timeout(deadline - now) {
                Ok(Ok(Ok(body))) => {
                    let _ = http::write_response(
                        &mut stream,
                        200,
                        "application/json",
                        &[("X-Cache", "miss".to_owned())],
                        &body,
                    );
                    200
                }
                Ok(Ok(Err(error))) => {
                    let _ = http::write_error(&mut stream, error.status(), error.message(), &[]);
                    error.status()
                }
                Ok(Err(_panic)) => {
                    let _ = http::write_error(&mut stream, 500, "computation panicked", &[]);
                    500
                }
                Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                    let _ = http::write_error(&mut stream, 504, "deadline exceeded", &[]);
                    504
                }
            },
        }
    };
    metrics.observe(route, status, received.elapsed());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Duration;

    fn dummy_stream() -> TcpStream {
        // A connected socket pair via a throwaway listener.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let _server_side = listener.accept().unwrap();
        client
    }

    fn dummy_job(deadline_from_now: Duration) -> Job {
        let now = Instant::now();
        Job {
            stream: dummy_stream(),
            route: "/test",
            compute: Box::new(|| Ok(b"{}".to_vec())),
            received: now,
            deadline: now + deadline_from_now,
        }
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        // No workers consuming: one slot, second submit bounces.
        let metrics = Arc::new(Metrics::new(1));
        let inner = Arc::new(QueueInner {
            state: Mutex::new(QueueState { jobs: VecDeque::new(), closed: false }),
            available: Condvar::new(),
            capacity: 1,
            metrics,
        });
        let pool = WorkerPool { inner, handles: Mutex::new(Vec::new()) };
        assert!(pool.try_submit(dummy_job(Duration::from_secs(5))).is_ok());
        assert!(pool.try_submit(dummy_job(Duration::from_secs(5))).is_err());
        assert_eq!(pool.queue_depth(), 1);
    }

    #[test]
    fn drain_finishes_queued_jobs() {
        let metrics = Arc::new(Metrics::new(2));
        let pool = WorkerPool::new(2, 8, Arc::clone(&metrics));
        for _ in 0..4 {
            pool.try_submit(dummy_job(Duration::from_secs(5))).map_err(|_| "full").unwrap();
        }
        pool.drain();
        assert_eq!(metrics.requests_for("/test", 200), 4, "every queued job was executed");
    }

    #[test]
    fn expired_jobs_answer_504_without_computing() {
        let metrics = Arc::new(Metrics::new(1));
        let pool = WorkerPool::new(1, 4, Arc::clone(&metrics));
        pool.try_submit(dummy_job(Duration::ZERO)).map_err(|_| "full").unwrap();
        pool.drain();
        assert_eq!(metrics.requests_for("/test", 504), 1);
    }
}
