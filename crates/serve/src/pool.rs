//! Bounded worker pool with an admission queue.
//!
//! The event loop resolves and validates requests, then submits a
//! [`Job`] here. `try_submit` never blocks: when the queue is at
//! capacity the caller answers `503 Service Unavailable` with a
//! `Retry-After` header instead (backpressure, not buffering).
//!
//! A job answers a *flight* (see [`crate::flight`]), not a single
//! socket: when it finishes, every connection coalesced onto the same
//! cache key receives the byte-identical response. Each worker executes
//! one job at a time. The job's compute closure runs on a watchdog
//! thread so the worker can enforce the per-request deadline with
//! `recv_timeout`: on expiry every waiter gets `504 Gateway Timeout`
//! immediately while the abandoned computation finishes in the
//! background and still warms the response cache (the closure inserts
//! its result itself).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::flight::{FlightTable, Waiter};
use crate::http;
use crate::metrics::Metrics;
use crate::ServeError;

/// An admitted computation waiting for (or undergoing) execution. The
/// connections it answers are parked on the flight table under `key`.
pub struct Job {
    /// The cache key whose flight this job lands.
    pub key: String,
    /// The flight table holding the parked connections.
    pub flights: Arc<FlightTable>,
    /// Route label for metrics.
    pub route: &'static str,
    /// Computes the response body (and inserts it into the cache).
    pub compute: Box<dyn FnOnce() -> Result<Vec<u8>, ServeError> + Send>,
    /// Admission deadline (the creator's); expired jobs answer 504
    /// without computing.
    pub deadline: Instant,
}

/// Writes a success response to every waiter of a landed flight.
pub fn respond_waiters_ok(waiters: Vec<Waiter>, route: &str, metrics: &Metrics, body: &[u8]) {
    for mut waiter in waiters {
        // Count before writing: a client that has read its response must
        // already see the request in /metrics.
        metrics.observe(route, 200, waiter.received.elapsed());
        let _ = http::write_response(
            &mut waiter.stream,
            200,
            "application/json",
            &[("X-Cache", "miss".to_owned())],
            body,
        );
    }
}

/// Writes an error response to every waiter of a landed flight.
pub fn respond_waiters_error(
    waiters: Vec<Waiter>,
    route: &str,
    metrics: &Metrics,
    status: u16,
    message: &str,
    extra_headers: &[(&str, String)],
) {
    for mut waiter in waiters {
        metrics.observe(route, status, waiter.received.elapsed());
        let _ = http::write_error(&mut waiter.stream, status, message, extra_headers);
    }
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct QueueInner {
    state: Mutex<QueueState>,
    available: Condvar,
    capacity: usize,
    metrics: Arc<Metrics>,
}

/// The bounded worker pool. Shared behind an `Arc` between the event
/// loop (submit) and the server teardown (drain).
pub struct WorkerPool {
    inner: Arc<QueueInner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawns `threads` workers sharing an admission queue of
    /// `capacity` jobs.
    #[must_use]
    pub fn new(threads: usize, capacity: usize, metrics: Arc<Metrics>) -> Self {
        let inner = Arc::new(QueueInner {
            state: Mutex::new(QueueState { jobs: VecDeque::new(), closed: false }),
            available: Condvar::new(),
            capacity: capacity.max(1),
            metrics,
        });
        let handles = (0..threads.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("faultline-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawning a pool worker cannot fail")
            })
            .collect();
        WorkerPool { inner, handles: Mutex::new(handles) }
    }

    /// Admits a job without blocking.
    ///
    /// # Errors
    ///
    /// Returns the job back when the queue is at capacity or the pool
    /// is draining; the caller answers 503 to the flight's waiters.
    pub fn try_submit(&self, job: Job) -> Result<(), Job> {
        let mut state = self.inner.state.lock().expect("pool queue poisoned");
        if state.closed || state.jobs.len() >= self.inner.capacity {
            return Err(job);
        }
        state.jobs.push_back(job);
        self.inner.metrics.set_queue_depth(state.jobs.len());
        drop(state);
        self.inner.available.notify_one();
        Ok(())
    }

    /// The number of jobs currently queued (not yet picked up).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.inner.state.lock().expect("pool queue poisoned").jobs.len()
    }

    /// Graceful drain: stops admitting, lets the workers finish every
    /// queued and in-flight job, then joins them. Idempotent.
    pub fn drain(&self) {
        {
            let mut state = self.inner.state.lock().expect("pool queue poisoned");
            state.closed = true;
        }
        self.inner.available.notify_all();
        let handles: Vec<_> =
            self.handles.lock().expect("pool handles poisoned").drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &QueueInner) {
    loop {
        let job = {
            let mut state = inner.state.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    inner.metrics.set_queue_depth(state.jobs.len());
                    break job;
                }
                if state.closed {
                    return;
                }
                state = inner.available.wait(state).expect("pool queue poisoned");
            }
        };
        inner.metrics.worker_busy();
        execute(job, &inner.metrics);
        inner.metrics.worker_idle();
    }
}

/// Runs one job under its deadline and answers its flight.
fn execute(job: Job, metrics: &Metrics) {
    metrics.pool_job();
    let Job { key, flights, route, compute, deadline } = job;
    let now = Instant::now();
    if now >= deadline {
        let waiters = flights.land(&key);
        respond_waiters_error(waiters, route, metrics, 504, "deadline exceeded while queued", &[]);
        return;
    }
    let (tx, rx) = channel();
    // The watchdog thread owns the computation; if the deadline fires
    // first the result is dropped but the closure has already warmed
    // the cache for the next request.
    let spawned =
        std::thread::Builder::new().name("faultline-serve-compute".to_owned()).spawn(move || {
            let _ = tx.send(catch_unwind(AssertUnwindSafe(compute)));
        });
    if let Err(e) = spawned {
        let waiters = flights.land(&key);
        respond_waiters_error(
            waiters,
            route,
            metrics,
            500,
            &format!("cannot spawn compute: {e}"),
            &[],
        );
        return;
    }
    match rx.recv_timeout(deadline - now) {
        Ok(Ok(Ok(body))) => {
            // Land only after the closure inserted into the cache, so a
            // request arriving now either hits the cache or starts a
            // fresh (immediately-warm) flight — never waits forever.
            let waiters = flights.land(&key);
            respond_waiters_ok(waiters, route, metrics, &body);
        }
        Ok(Ok(Err(error))) => {
            let waiters = flights.land(&key);
            respond_waiters_error(waiters, route, metrics, error.status(), error.message(), &[]);
        }
        Ok(Err(_panic)) => {
            let waiters = flights.land(&key);
            respond_waiters_error(waiters, route, metrics, 500, "computation panicked", &[]);
        }
        Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
            let waiters = flights.land(&key);
            respond_waiters_error(waiters, route, metrics, 504, "deadline exceeded", &[]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::Parked;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    fn dummy_stream() -> TcpStream {
        // A connected socket pair via a throwaway listener.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let _server_side = listener.accept().unwrap();
        client
    }

    fn dummy_job(flights: &Arc<FlightTable>, key: &str, deadline_from_now: Duration) -> Job {
        let now = Instant::now();
        let parked = flights.park(key, Waiter { stream: dummy_stream(), received: now });
        assert_eq!(parked, Parked::Created, "test keys are unique per job");
        Job {
            key: key.to_owned(),
            flights: Arc::clone(flights),
            route: "/test",
            compute: Box::new(|| Ok(b"{}".to_vec())),
            deadline: now + deadline_from_now,
        }
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        // No workers consuming: one slot, second submit bounces.
        let metrics = Arc::new(Metrics::new(1));
        let inner = Arc::new(QueueInner {
            state: Mutex::new(QueueState { jobs: VecDeque::new(), closed: false }),
            available: Condvar::new(),
            capacity: 1,
            metrics,
        });
        let pool = WorkerPool { inner, handles: Mutex::new(Vec::new()) };
        let flights = Arc::new(FlightTable::new());
        assert!(pool.try_submit(dummy_job(&flights, "a", Duration::from_secs(5))).is_ok());
        assert!(pool.try_submit(dummy_job(&flights, "b", Duration::from_secs(5))).is_err());
        assert_eq!(pool.queue_depth(), 1);
    }

    #[test]
    fn drain_finishes_queued_jobs() {
        let metrics = Arc::new(Metrics::new(2));
        let pool = WorkerPool::new(2, 8, Arc::clone(&metrics));
        let flights = Arc::new(FlightTable::new());
        for key in ["a", "b", "c", "d"] {
            pool.try_submit(dummy_job(&flights, key, Duration::from_secs(5)))
                .map_err(|_| "full")
                .unwrap();
        }
        pool.drain();
        assert_eq!(metrics.requests_for("/test", 200), 4, "every queued job was executed");
        assert_eq!(metrics.pool_jobs(), 4);
        assert_eq!(flights.in_flight(), 0, "every flight landed");
    }

    #[test]
    fn expired_jobs_answer_504_without_computing() {
        let metrics = Arc::new(Metrics::new(1));
        let pool = WorkerPool::new(1, 4, Arc::clone(&metrics));
        let flights = Arc::new(FlightTable::new());
        pool.try_submit(dummy_job(&flights, "late", Duration::ZERO)).map_err(|_| "full").unwrap();
        pool.drain();
        assert_eq!(metrics.requests_for("/test", 504), 1);
    }

    #[test]
    fn one_job_answers_every_coalesced_waiter() {
        let metrics = Arc::new(Metrics::new(1));
        let pool = WorkerPool::new(1, 4, Arc::clone(&metrics));
        let flights = Arc::new(FlightTable::new());
        let job = dummy_job(&flights, "herd", Duration::from_secs(5));
        // Three more connections coalesce onto the same flight.
        for _ in 0..3 {
            let parked =
                flights.park("herd", Waiter { stream: dummy_stream(), received: Instant::now() });
            assert_eq!(parked, Parked::Coalesced, "the flight exists");
        }
        pool.try_submit(job).map_err(|_| "full").unwrap();
        pool.drain();
        assert_eq!(metrics.requests_for("/test", 200), 4, "all four waiters answered");
        assert_eq!(metrics.pool_jobs(), 1, "one computation for the herd");
    }
}
