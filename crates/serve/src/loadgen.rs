//! Deterministic seeded load generation against a running server (or
//! an in-process sharded one spawned on demand).
//!
//! The workload is a fixed mix over the serving tiers — memoized
//! `/v1/cr` lattice points, scenario presets (heavy, cache-warming),
//! `/v1/table1`, and `/healthz` probes — generated from per-thread
//! SplitMix64 streams, so the same `(seed, requests, concurrency)`
//! produces the same request sequence on every run. Each thread folds
//! `(status, body)` of every response into an FNV-1a digest in request
//! order; thread digests combine in thread order, so *the digest is a
//! deterministic function of the workload and the server's semantics*,
//! not of timing. Two runs with one seed must produce one digest — the
//! soak test pins exactly that.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use crate::client::Session;
use crate::config::ServeConfig;
use crate::server::ServerHandle;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// What to drive and how hard.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Target address; `None` spawns an in-process sharded server.
    pub addr: Option<String>,
    /// In-process shard count when `addr` is `None` (SO_REUSEPORT
    /// listeners sharing one port, kernel-balanced).
    pub shards: usize,
    /// Total request count across all client threads.
    pub requests: u64,
    /// Concurrent client threads, each with one keep-alive session.
    pub concurrency: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions { addr: None, shards: 2, requests: 12_000, concurrency: 8, seed: 1 }
    }
}

impl LoadOptions {
    /// The CI-sized variant: same mix, fewer requests.
    #[must_use]
    pub fn quick(self) -> LoadOptions {
        LoadOptions { requests: 1_200, concurrency: 4, ..self }
    }
}

/// Measured outcome of one load run.
#[derive(Debug, Clone)]
pub struct LoadSummary {
    /// Requests completed (transport errors included in `errors`, not
    /// here).
    pub requests: u64,
    /// Transport-level failures (connect/read/write after retry).
    pub errors: u64,
    /// Wall-clock of the firing phase in milliseconds.
    pub wall_ms: f64,
    /// Completed requests per second.
    pub qps: f64,
    /// Median response latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile response latency in milliseconds.
    pub p99_ms: f64,
    /// Worst response latency in milliseconds.
    pub max_ms: f64,
    /// Response count by HTTP status.
    pub statuses: BTreeMap<u16, u64>,
    /// Order-stable FNV-1a digest over every `(status, body)` pair,
    /// hex-encoded. Identical seed ⇒ identical digest.
    pub digest: String,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fnv_fold(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= u64::from(b);
        *digest = digest.wrapping_mul(FNV_PRIME);
    }
}

/// One deterministic request: `(method, path, body)`.
fn nth_request(rng: &mut u64) -> (&'static str, String, Option<String>) {
    /// Scenario presets driven by the mixed workload; all resolve
    /// deterministically (seeded presets use their default seed).
    const PRESETS: [&str; 6] =
        ["smoke", "two-group", "proportional", "explicit-faults", "byzantine", "p-faulty"];
    match splitmix64(rng) % 10 {
        // 60%: the memoized closed-form lattice.
        0..=5 => {
            let n = (splitmix64(rng) % 16) as usize + 1;
            let f = (splitmix64(rng) as usize) % n;
            ("GET", format!("/v1/cr?n={n}&f={f}"), None)
        }
        // 20%: heavy scenario presets (single-flight + cache after the
        // first miss of each).
        6 | 7 => {
            let name = PRESETS[(splitmix64(rng) as usize) % PRESETS.len()];
            ("POST", "/v1/scenario".to_owned(), Some(format!("{{\"name\": \"{name}\"}}")))
        }
        // 10%: the closed-form Table 1.
        8 => ("GET", "/v1/table1".to_owned(), None),
        // 10%: liveness probes.
        _ => ("GET", "/healthz".to_owned(), None),
    }
}

struct ThreadOutcome {
    latencies_ms: Vec<f64>,
    statuses: BTreeMap<u16, u64>,
    digest: u64,
    errors: u64,
}

fn drive_thread(addr: &str, seed: u64, thread_index: u64, count: u64) -> ThreadOutcome {
    let mut rng = seed ^ thread_index.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut session = Session::new(addr);
    let mut outcome = ThreadOutcome {
        latencies_ms: Vec::with_capacity(count as usize),
        statuses: BTreeMap::new(),
        digest: FNV_OFFSET,
        errors: 0,
    };
    for _ in 0..count {
        let (method, path, body) = nth_request(&mut rng);
        let start = Instant::now();
        match session.request(method, &path, body.as_deref()) {
            Ok(response) => {
                outcome.latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
                *outcome.statuses.entry(response.status).or_insert(0) += 1;
                fnv_fold(&mut outcome.digest, &response.status.to_be_bytes());
                fnv_fold(&mut outcome.digest, &response.body);
            }
            Err(_) => {
                outcome.errors += 1;
                fnv_fold(&mut outcome.digest, b"transport-error");
            }
        }
    }
    outcome
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Runs the seeded workload and summarizes it.
///
/// # Errors
///
/// Fails when the in-process server cannot spawn, or the options are
/// degenerate (zero requests/concurrency).
pub fn run(options: &LoadOptions) -> Result<LoadSummary, String> {
    if options.requests == 0 || options.concurrency == 0 {
        return Err("loadgen needs at least one request and one thread".to_owned());
    }
    // Spawn an in-process sharded server unless a target was given.
    // The first shard binds port 0 (with SO_REUSEPORT when sharded) and
    // the rest join its concrete port.
    let mut servers: Vec<ServerHandle> = Vec::new();
    let addr = match &options.addr {
        Some(addr) => addr.clone(),
        None => {
            let shards = options.shards.max(1);
            let first = ServerHandle::spawn(ServeConfig {
                addr: "127.0.0.1:0".to_owned(),
                reuse_port: shards > 1,
                ..ServeConfig::default()
            })
            .map_err(|e| format!("cannot spawn shard 0: {e}"))?;
            let addr = first.addr().to_string();
            servers.push(first);
            for shard in 1..shards {
                servers.push(
                    ServerHandle::spawn(ServeConfig {
                        addr: addr.clone(),
                        reuse_port: true,
                        ..ServeConfig::default()
                    })
                    .map_err(|e| format!("cannot spawn shard {shard}: {e}"))?,
                );
            }
            addr
        }
    };

    let addr: Arc<str> = Arc::from(addr.into_boxed_str());
    let threads = options.concurrency.min(options.requests as usize);
    let per_thread = options.requests / threads as u64;
    let remainder = options.requests % threads as u64;
    let started = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|i| {
            let addr = Arc::clone(&addr);
            let seed = options.seed;
            let count = per_thread + u64::from((i as u64) < remainder);
            std::thread::Builder::new()
                .name(format!("faultline-loadgen-{i}"))
                .spawn(move || drive_thread(&addr, seed, i as u64, count))
                .map_err(|e| format!("cannot spawn load thread {i}: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let outcomes: Vec<ThreadOutcome> = workers
        .into_iter()
        .map(|w| w.join().map_err(|_| "a load thread panicked".to_owned()))
        .collect::<Result<_, _>>()?;
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    // Combine in thread order: the digest stays order-stable.
    let mut digest = FNV_OFFSET;
    let mut latencies = Vec::new();
    let mut statuses: BTreeMap<u16, u64> = BTreeMap::new();
    let mut errors = 0u64;
    for outcome in &outcomes {
        fnv_fold(&mut digest, &outcome.digest.to_be_bytes());
        latencies.extend_from_slice(&outcome.latencies_ms);
        for (&status, &count) in &outcome.statuses {
            *statuses.entry(status).or_insert(0) += count;
        }
        errors += outcome.errors;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let completed = latencies.len() as u64;
    let qps = if wall_ms > 0.0 { completed as f64 / (wall_ms / 1e3) } else { 0.0 };
    let summary = LoadSummary {
        requests: completed,
        errors,
        wall_ms,
        qps,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        max_ms: latencies.last().copied().unwrap_or(0.0),
        statuses,
        digest: format!("{digest:016x}"),
    };
    // Graceful teardown of any in-process shards.
    for server in servers {
        server.shutdown();
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_streams_are_deterministic_per_seed() {
        let mut a = 7u64;
        let mut b = 7u64;
        for _ in 0..100 {
            assert_eq!(nth_request(&mut a), nth_request(&mut b));
        }
        let mut c = 8u64;
        let different = (0..100).any(|_| nth_request(&mut a) != nth_request(&mut c));
        assert!(different, "different seeds produce different streams");
    }

    #[test]
    fn the_mix_covers_every_tier() {
        let mut rng = 3u64;
        let mut saw_cr = false;
        let mut saw_scenario = false;
        let mut saw_table = false;
        let mut saw_health = false;
        for _ in 0..200 {
            let (_, path, _) = nth_request(&mut rng);
            saw_cr |= path.starts_with("/v1/cr");
            saw_scenario |= path == "/v1/scenario";
            saw_table |= path == "/v1/table1";
            saw_health |= path == "/healthz";
        }
        assert!(saw_cr && saw_scenario && saw_table && saw_health);
    }

    #[test]
    fn percentiles_pick_the_right_ranks() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&sorted, 0.50), 5.0);
        assert_eq!(percentile(&sorted, 0.99), 10.0);
        assert_eq!(percentile(&[], 0.99), 0.0);
    }

    #[test]
    fn degenerate_options_are_rejected() {
        assert!(run(&LoadOptions { requests: 0, ..LoadOptions::default() }).is_err());
        assert!(run(&LoadOptions { concurrency: 0, ..LoadOptions::default() }).is_err());
    }

    #[test]
    fn a_tiny_run_against_one_shard_completes_cleanly() {
        let options =
            LoadOptions { shards: 1, requests: 60, concurrency: 3, ..LoadOptions::default() };
        let summary = run(&options).expect("tiny run");
        assert_eq!(summary.requests, 60);
        assert_eq!(summary.errors, 0);
        assert_eq!(summary.statuses.get(&200), Some(&60), "every response is a 200");
        assert_eq!(summary.digest.len(), 16);
    }
}
