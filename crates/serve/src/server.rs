//! The server: a non-blocking accept loop that polls the shutdown
//! latch, per-connection threads that parse + resolve requests, an
//! inline fast path for light work (health, metrics, closed-form `cr`,
//! and *every* cache hit), and the bounded worker pool for heavy cache
//! misses. Saturation therefore degrades exactly as advertised: heavy
//! misses get `503 + Retry-After`, while probes and repeat queries keep
//! answering.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::cache::ResponseCache;
use crate::config::ServeConfig;
use crate::handlers::{self, Prepared};
use crate::http::{self, Request};
use crate::metrics::Metrics;
use crate::pool::{Job, WorkerPool};
use crate::router::{route, Route, Routed};
use crate::signal;

/// Metrics label for requests that match no route.
const UNMATCHED: &str = "unmatched";
/// How often the waker thread polls the shutdown latches. This bounds
/// shutdown reaction time, NOT request latency: accepts block.
const SHUTDOWN_POLL: Duration = Duration::from_millis(25);
/// Socket read timeout for request parsing (defends the connection
/// thread against idle peers).
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Everything a connection needs, shared behind one `Arc`.
pub struct ServerState {
    /// The configuration the server was built with.
    pub config: ServeConfig,
    /// The response cache.
    pub cache: Arc<ResponseCache>,
    /// Service metrics.
    pub metrics: Arc<Metrics>,
    /// The bounded worker pool.
    pub pool: Arc<WorkerPool>,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener and builds the cache, metrics and pool.
    ///
    /// # Errors
    ///
    /// Fails on invalid configuration or if the address cannot be
    /// bound.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        config.validate().map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let listener = TcpListener::bind(&config.addr)?;
        let threads = config.resolved_threads();
        let cache = Arc::new(ResponseCache::new(config.cache_bytes, config.cache_shards));
        let metrics = Arc::new(Metrics::new(threads));
        let pool = Arc::new(WorkerPool::new(threads, config.queue_capacity, Arc::clone(&metrics)));
        Ok(Server { listener, state: Arc::new(ServerState { config, cache, metrics, pool }) })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Shared state handle (cache, metrics, pool).
    #[must_use]
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Runs the accept loop until `shutdown` flips or a termination
    /// signal arrives, then drains the pool gracefully: no new
    /// connections are accepted, every admitted job completes.
    ///
    /// Accepts are *blocking* (no polling latency on the request
    /// path); a small waker thread watches the shutdown latches and
    /// unblocks the final accept with a loopback connection.
    pub fn run(self, shutdown: Arc<AtomicBool>) {
        let waker = {
            let flag = Arc::clone(&shutdown);
            let addr = self.listener.local_addr().ok();
            std::thread::Builder::new()
                .name("faultline-serve-waker".to_owned())
                .spawn(move || {
                    while !flag.load(Ordering::SeqCst) && !signal::shutdown_requested() {
                        std::thread::sleep(SHUTDOWN_POLL);
                    }
                    // Latch the programmatic flag (the signal may have
                    // been the trigger) and unblock the accept call.
                    flag.store(true, Ordering::SeqCst);
                    if let Some(addr) = addr {
                        let _ = TcpStream::connect(addr);
                    }
                })
                .ok()
        };
        loop {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // The wake-up connection (or a request racing the
                    // shutdown) is dropped unanswered.
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let state = Arc::clone(&self.state);
                    // One short-lived thread per connection: parsing and
                    // light work happen here, so a slow peer can never
                    // wedge the accept loop.
                    let _ = std::thread::Builder::new()
                        .name("faultline-serve-conn".to_owned())
                        .spawn(move || handle_connection(stream, &state));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(1)),
            }
        }
        // Stop accepting before draining so "graceful" means: in-flight
        // and queued requests finish, new ones are refused.
        drop(self.listener);
        if let Some(waker) = waker {
            let _ = waker.join();
        }
        self.state.pool.drain();
    }
}

/// A server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    state: Arc<ServerState>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Binds and runs a server on a background thread.
    ///
    /// # Errors
    ///
    /// Propagates [`Server::bind`] failures.
    pub fn spawn(config: ServeConfig) -> io::Result<ServerHandle> {
        let server = Server::bind(config)?;
        let addr = server.local_addr()?;
        let state = server.state();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let thread = std::thread::Builder::new()
            .name("faultline-serve-accept".to_owned())
            .spawn(move || server.run(flag))?;
        Ok(ServerHandle { addr, shutdown, state, thread: Some(thread) })
    }

    /// The bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state handle (cache, metrics, pool).
    #[must_use]
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Requests a graceful shutdown and waits for the drain to finish.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept call immediately instead of waiting for
        // the waker's next poll tick.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn handle_connection(mut stream: TcpStream, state: &ServerState) {
    let received = Instant::now();
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let request = match http::read_request(&mut stream) {
        Ok(Ok(request)) => request,
        Ok(Err(parse_error)) => {
            let _ = http::write_error(&mut stream, parse_error.status, &parse_error.message, &[]);
            state.metrics.observe(UNMATCHED, parse_error.status, received.elapsed());
            return;
        }
        Err(_io) => return, // peer went away; nothing to answer
    };
    match route(&request.method, &request.path) {
        Routed::NotFound => {
            let _ = http::write_error(
                &mut stream,
                404,
                &format!("no route for {} {}", request.method, request.path),
                &[],
            );
            state.metrics.observe(UNMATCHED, 404, received.elapsed());
        }
        Routed::MethodNotAllowed(allowed) => {
            let _ = http::write_error(
                &mut stream,
                405,
                &format!("{} expects {allowed}", request.path),
                &[("Allow", allowed.to_owned())],
            );
            state.metrics.observe(UNMATCHED, 405, received.elapsed());
        }
        Routed::Matched(Route::Healthz) => {
            let _ = http::write_response(
                &mut stream,
                200,
                "application/json",
                &[],
                b"{\"status\": \"ok\"}\n",
            );
            state.metrics.observe(Route::Healthz.label(), 200, received.elapsed());
        }
        Routed::Matched(Route::Metrics) => {
            let body = state.metrics.render(&state.cache);
            let _ = http::write_response(
                &mut stream,
                200,
                "text/plain; version=0.0.4",
                &[],
                body.as_bytes(),
            );
            state.metrics.observe(Route::Metrics.label(), 200, received.elapsed());
        }
        Routed::Matched(matched) => {
            handle_compute(stream, state, matched, &request, received);
        }
    }
}

/// Serves a compute route: resolve, consult the cache, then either
/// answer inline (hits and light routes) or admit to the pool.
fn handle_compute(
    mut stream: TcpStream,
    state: &ServerState,
    matched: Route,
    request: &Request,
    received: Instant,
) {
    let Prepared { cache_key, compute } = match handlers::prepare(matched, request) {
        Ok(prepared) => prepared,
        Err(error) => {
            let _ = http::write_error(&mut stream, error.status(), error.message(), &[]);
            state.metrics.observe(matched.label(), error.status(), received.elapsed());
            return;
        }
    };

    // Cache hits are answered inline — even on heavy routes — with the
    // exact bytes the original computation produced.
    if let Some(body) = state.cache.get(&cache_key) {
        let _ = http::write_response(
            &mut stream,
            200,
            "application/json",
            &[("X-Cache", "hit".to_owned())],
            &body,
        );
        state.metrics.observe(matched.label(), 200, received.elapsed());
        return;
    }

    // On a miss the computation also populates the cache, so even a
    // deadline-abandoned job warms it for the next request.
    let cache = Arc::clone(&state.cache);
    let compute_and_insert: Box<dyn FnOnce() -> Result<Vec<u8>, crate::ServeError> + Send> =
        Box::new(move || {
            let body = compute()?;
            cache.insert(cache_key, Arc::from(body.clone().into_boxed_slice()));
            Ok(body)
        });

    if matched.is_heavy() {
        let job = Job {
            stream,
            route: matched.label(),
            compute: compute_and_insert,
            received,
            deadline: received + state.config.request_timeout,
        };
        if let Err(mut job) = state.pool.try_submit(job) {
            let _ = http::write_error(
                &mut job.stream,
                503,
                "admission queue is full, retry shortly",
                &[("Retry-After", "1".to_owned())],
            );
            state.metrics.observe(matched.label(), 503, received.elapsed());
        }
        return;
    }

    // Light compute (closed-form /v1/cr): answer inline.
    match compute_and_insert() {
        Ok(body) => {
            let _ = http::write_response(
                &mut stream,
                200,
                "application/json",
                &[("X-Cache", "miss".to_owned())],
                &body,
            );
            state.metrics.observe(matched.label(), 200, received.elapsed());
        }
        Err(error) => {
            let _ = http::write_error(&mut stream, error.status(), error.message(), &[]);
            state.metrics.observe(matched.label(), error.status(), received.elapsed());
        }
    }
}
