//! The server: a readiness-based epoll event loop (raw FFI, see
//! [`crate::sys`]) owning accept/read/write with HTTP/1.1 keep-alive.
//!
//! One thread multiplexes every connection: non-blocking reads fill a
//! per-connection buffer, requests are parsed incrementally out of it
//! (a half-written header — slowloris — just occupies a buffer, never a
//! thread), and responses queue into a per-connection write buffer
//! flushed on writability. Serving goes through four tiers:
//!
//! 1. **memo** — `GET /v1/cr` inside the precomputed `(n, f)` lattice:
//!    a `HashMap` probe, no cache, no pool (`X-Cache: memo`).
//! 2. **hit** — the sharded LRU answers inline with the exact bytes of
//!    the original computation (`X-Cache: hit`).
//! 3. **light miss** — closed-form routes compute inline on the event
//!    loop (`X-Cache: miss`).
//! 4. **heavy miss** — the connection *parks* on a single-flight keyed
//!    on the cache key; the first requester submits the one bounded
//!    worker-pool job, coalesced followers just wait. Saturation
//!    degrades exactly as before: a full admission queue answers
//!    `503 + Retry-After`, an expired deadline `504`, while probes and
//!    repeat queries keep answering on the event loop.
//!
//! Parked responses close their connection (they leave the event loop
//! for good); every inline tier honors keep-alive.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::cache::ResponseCache;
use crate::config::ServeConfig;
use crate::flight::{FlightTable, Parked, Waiter};
use crate::handlers::{self, Prepared};
use crate::http::{self, Parsed, Request};
use crate::memo::CrMemo;
use crate::metrics::Metrics;
use crate::pool::{self, Job, WorkerPool};
use crate::router::{route, Route, Routed};
use crate::signal;
use crate::sys::{self, Poller, EVENT_READ, EVENT_WRITE};

/// Metrics label for requests that match no route.
const UNMATCHED: &str = "unmatched";
/// The epoll wait timeout; bounds shutdown reaction time (a wait tick
/// re-checks the latches), NOT request latency (readiness wakes it).
const SHUTDOWN_POLL: Duration = Duration::from_millis(25);
/// Read chunk size for draining a readable socket.
const READ_CHUNK: usize = 8 * 1024;
/// How often idle connections are swept.
const SWEEP_INTERVAL: Duration = Duration::from_secs(1);

/// Everything a connection needs, shared behind one `Arc`.
pub struct ServerState {
    /// The configuration the server was built with.
    pub config: ServeConfig,
    /// The response cache.
    pub cache: Arc<ResponseCache>,
    /// Service metrics.
    pub metrics: Arc<Metrics>,
    /// The bounded worker pool.
    pub pool: Arc<WorkerPool>,
    /// In-flight single-flight computations keyed on cache keys.
    pub flights: Arc<FlightTable>,
    /// The precomputed `/v1/cr` closed-form lattice.
    pub memo: Arc<CrMemo>,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener and builds the cache, metrics, pool, flight
    /// table and closed-form memo.
    ///
    /// # Errors
    ///
    /// Fails on invalid configuration or if the address cannot be
    /// bound.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        config.validate().map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let listener = if config.reuse_port {
            let addr: SocketAddr = config
                .addr
                .parse()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("{e}")))?;
            sys::bind_reuseport(&addr)?
        } else {
            TcpListener::bind(&config.addr)?
        };
        let threads = config.resolved_threads();
        let cache = Arc::new(ResponseCache::new(config.cache_bytes, config.cache_shards));
        let metrics = Arc::new(Metrics::new(threads));
        let pool = Arc::new(WorkerPool::new(threads, config.queue_capacity, Arc::clone(&metrics)));
        let flights = Arc::new(FlightTable::new());
        let memo = Arc::new(CrMemo::build(config.memo_max_n));
        Ok(Server {
            listener,
            state: Arc::new(ServerState { config, cache, metrics, pool, flights, memo }),
        })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Shared state handle (cache, metrics, pool, flights, memo).
    #[must_use]
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Runs the event loop until `shutdown` flips or a termination
    /// signal arrives, then drains gracefully: the listener closes (no
    /// new connections), idle keep-alive connections are dropped, and
    /// every admitted pool job completes before this returns.
    pub fn run(self, shutdown: Arc<AtomicBool>) {
        if let Err(error) = event_loop(&self.listener, &self.state, &shutdown) {
            eprintln!("faultline-serve event loop failed: {error}");
        }
        // Stop accepting before draining so "graceful" means: in-flight
        // and queued requests finish, new ones are refused.
        drop(self.listener);
        self.state.pool.drain();
    }
}

/// A server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    state: Arc<ServerState>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Binds and runs a server on a background thread.
    ///
    /// # Errors
    ///
    /// Propagates [`Server::bind`] failures.
    pub fn spawn(config: ServeConfig) -> io::Result<ServerHandle> {
        let server = Server::bind(config)?;
        let addr = server.local_addr()?;
        let state = server.state();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let thread = std::thread::Builder::new()
            .name("faultline-serve-loop".to_owned())
            .spawn(move || server.run(flag))?;
        Ok(ServerHandle { addr, shutdown, state, thread: Some(thread) })
    }

    /// The bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state handle (cache, metrics, pool, flights, memo).
    #[must_use]
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Requests a graceful shutdown and waits for the drain to finish.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Nudge the event loop: a loopback connect makes the listener
        // readable, so the next wait returns without the poll tick.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One connection owned by the event loop.
struct Connection {
    stream: TcpStream,
    /// Accumulated unparsed request bytes.
    buf: Vec<u8>,
    /// Pending response bytes not yet written.
    out: Vec<u8>,
    /// Prefix of `out` already written to the socket.
    written: usize,
    /// When the request currently being accumulated started arriving.
    request_start: Instant,
    /// Last moment bytes moved in either direction.
    last_activity: Instant,
    /// Close the connection once `out` drains.
    close_after_flush: bool,
    /// Requests answered on this connection (keep-alive accounting).
    requests_served: u64,
    /// Whether the epoll registration currently includes writability.
    wants_write: bool,
}

impl Connection {
    fn new(stream: TcpStream) -> Connection {
        let now = Instant::now();
        Connection {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            written: 0,
            request_start: now,
            last_activity: now,
            close_after_flush: false,
            requests_served: 0,
            wants_write: false,
        }
    }

    fn pending_output(&self) -> bool {
        self.written < self.out.len()
    }
}

/// A heavy cache miss leaving the event loop for the pool path.
struct ParkRequest {
    key: String,
    route: &'static str,
    compute: Box<dyn FnOnce() -> Result<Vec<u8>, crate::ServeError> + Send>,
    received: Instant,
}

/// What `process_buffer` decided about a connection's future.
enum AfterProcess {
    /// Stay on the event loop.
    Keep,
    /// Hand the stream to the flight table (heavy miss).
    Park(ParkRequest),
    /// Unrecoverable (peer vanished mid-read/write).
    Drop,
}

fn event_loop(
    listener: &TcpListener,
    state: &Arc<ServerState>,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    let listener_fd = listener.as_raw_fd();
    poller.add(listener_fd, EVENT_READ)?;
    let mut conns: HashMap<i32, Connection> = HashMap::new();
    let mut events = Vec::new();
    let mut last_sweep = Instant::now();

    while !shutdown.load(Ordering::SeqCst) && !signal::shutdown_requested() {
        events.clear();
        poller.wait(SHUTDOWN_POLL, &mut events)?;
        for event in &events {
            let fd = event.token as i32;
            if fd == listener_fd {
                accept_ready(listener, &poller, &mut conns, state);
            } else {
                service_connection(
                    fd,
                    event.readable(),
                    event.writable(),
                    &poller,
                    &mut conns,
                    state,
                );
            }
        }
        if last_sweep.elapsed() >= SWEEP_INTERVAL {
            sweep_idle(&poller, &mut conns, state.config.idle_timeout);
            last_sweep = Instant::now();
        }
    }

    // Teardown: drop every event-loop connection. Idle keep-alive
    // peers see EOF; parked connections are not here — the pool drain
    // answers them.
    for (fd, _conn) in conns.drain() {
        let _ = poller.del(fd);
    }
    Ok(())
}

/// Accepts every pending connection on a readable listener.
fn accept_ready(
    listener: &TcpListener,
    poller: &Poller,
    conns: &mut HashMap<i32, Connection>,
    state: &ServerState,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let fd = stream.as_raw_fd();
                if poller.add(fd, EVENT_READ).is_ok() {
                    state.metrics.connection_accepted();
                    conns.insert(fd, Connection::new(stream));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// Handles one readiness event for an established connection.
fn service_connection(
    fd: i32,
    readable: bool,
    writable: bool,
    poller: &Poller,
    conns: &mut HashMap<i32, Connection>,
    state: &Arc<ServerState>,
) {
    let Some(mut conn) = conns.remove(&fd) else {
        return; // already closed this tick
    };

    if writable && try_flush(&mut conn).is_err() {
        let _ = poller.del(fd);
        return;
    }

    let after = if readable { read_and_process(&mut conn, state) } else { AfterProcess::Keep };

    match after {
        AfterProcess::Drop => {
            let _ = poller.del(fd);
        }
        AfterProcess::Park(park) => {
            let _ = poller.del(fd);
            // Flush any pipelined responses queued ahead of the parked
            // request, then hand the (blocking again) stream to the
            // flight. The pool path writes blocking.
            let Connection { stream, out, written, .. } = conn;
            if stream.set_nonblocking(false).is_err() {
                return;
            }
            let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
            if written < out.len() {
                let mut stream_ref = &stream;
                if stream_ref.write_all(&out[written..]).is_err() {
                    return;
                }
            }
            let _ = stream.set_write_timeout(None);
            park_on_flight(stream, park, state);
        }
        AfterProcess::Keep => {
            if try_flush(&mut conn).is_err() {
                let _ = poller.del(fd);
                return;
            }
            if conn.close_after_flush && !conn.pending_output() {
                let _ = poller.del(fd);
                return;
            }
            let wants_write = conn.pending_output();
            if wants_write != conn.wants_write {
                let interest = EVENT_READ | if wants_write { EVENT_WRITE } else { 0 };
                if poller.set(fd, interest).is_err() {
                    return;
                }
                conn.wants_write = wants_write;
            }
            conns.insert(fd, conn);
        }
    }
}

/// Drains the socket into the buffer, then parses and serves every
/// complete request in it.
fn read_and_process(conn: &mut Connection, state: &Arc<ServerState>) -> AfterProcess {
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => return AfterProcess::Drop, // peer closed
            Ok(n) => {
                if conn.buf.is_empty() {
                    conn.request_start = Instant::now();
                }
                conn.buf.extend_from_slice(&chunk[..n]);
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return AfterProcess::Drop,
        }
    }
    process_buffer(conn, state)
}

/// Parses and answers every complete request in the buffer.
fn process_buffer(conn: &mut Connection, state: &Arc<ServerState>) -> AfterProcess {
    while !conn.close_after_flush {
        match http::parse_request(&conn.buf) {
            Parsed::Incomplete => break,
            Parsed::Invalid(error) => {
                let bytes = http::error_bytes(error.status, &error.message, &[], false);
                conn.out.extend_from_slice(&bytes);
                state.metrics.observe(UNMATCHED, error.status, conn.request_start.elapsed());
                conn.close_after_flush = true;
                conn.buf.clear();
                break;
            }
            Parsed::Ready { request, consumed } => {
                conn.buf.drain(..consumed);
                conn.requests_served += 1;
                if conn.requests_served > 1 {
                    state.metrics.keepalive_reuse();
                }
                let received = conn.request_start;
                conn.request_start = Instant::now();
                match handle_request(state, &request, received) {
                    Outcome::Inline(bytes) => {
                        conn.out.extend_from_slice(&bytes);
                        if !request.keep_alive {
                            conn.close_after_flush = true;
                            conn.buf.clear();
                        }
                    }
                    Outcome::Park(park) => {
                        // Bytes pipelined behind a parked request are
                        // dropped: its response closes the connection.
                        conn.buf.clear();
                        return AfterProcess::Park(park);
                    }
                }
            }
        }
    }
    AfterProcess::Keep
}

/// How one parsed request gets answered.
enum Outcome {
    /// Complete response bytes for the connection's write buffer.
    Inline(Vec<u8>),
    /// Heavy cache miss: park the connection on the single-flight.
    Park(ParkRequest),
}

/// Serves one request through the tier ladder (memo → cache hit →
/// inline light compute → parked heavy compute).
fn handle_request(state: &Arc<ServerState>, request: &Request, received: Instant) -> Outcome {
    let keep = request.keep_alive;
    let matched = match route(&request.method, &request.path) {
        Routed::NotFound => {
            state.metrics.observe(UNMATCHED, 404, received.elapsed());
            return Outcome::Inline(http::error_bytes(
                404,
                &format!("no route for {} {}", request.method, request.path),
                &[],
                keep,
            ));
        }
        Routed::MethodNotAllowed(allowed) => {
            state.metrics.observe(UNMATCHED, 405, received.elapsed());
            return Outcome::Inline(http::error_bytes(
                405,
                &format!("{} expects {allowed}", request.path),
                &[("Allow", allowed.to_owned())],
                keep,
            ));
        }
        Routed::Matched(Route::Healthz) => {
            state.metrics.observe(Route::Healthz.label(), 200, received.elapsed());
            return Outcome::Inline(http::response_bytes(
                200,
                "application/json",
                &[],
                b"{\"status\": \"ok\"}\n",
                keep,
            ));
        }
        Routed::Matched(Route::Metrics) => {
            let body = state.metrics.render(&state.cache);
            state.metrics.observe(Route::Metrics.label(), 200, received.elapsed());
            return Outcome::Inline(http::response_bytes(
                200,
                "text/plain; version=0.0.4",
                &[],
                body.as_bytes(),
                keep,
            ));
        }
        Routed::Matched(matched) => matched,
    };

    // Tier 1: the precomputed closed-form lattice. A memoized (n, f)
    // answers straight off the event loop — no cache, no pool. Pairs
    // outside the lattice (or unparsable parameters) fall through to
    // the normal path for its exact resolution and diagnostics.
    if matched == Route::Cr {
        let parsed = (
            request.query_param("n").and_then(|v| v.parse::<usize>().ok()),
            request.query_param("f").and_then(|v| v.parse::<usize>().ok()),
        );
        if let (Some(n), Some(f)) = parsed {
            if let Some(body) = state.memo.get(n, f) {
                state.metrics.memo_hit();
                state.metrics.observe(matched.label(), 200, received.elapsed());
                return Outcome::Inline(http::response_bytes(
                    200,
                    "application/json",
                    &[("X-Cache", "memo".to_owned())],
                    &body,
                    keep,
                ));
            }
        }
    }

    let Prepared { cache_key, compute } = match handlers::prepare(matched, request) {
        Ok(prepared) => prepared,
        Err(error) => {
            state.metrics.observe(matched.label(), error.status(), received.elapsed());
            return Outcome::Inline(http::error_bytes(error.status(), error.message(), &[], keep));
        }
    };

    // Tier 2: cache hits are answered inline — even on heavy routes —
    // with the exact bytes the original computation produced.
    if let Some(body) = state.cache.get(&cache_key) {
        state.metrics.observe(matched.label(), 200, received.elapsed());
        return Outcome::Inline(http::response_bytes(
            200,
            "application/json",
            &[("X-Cache", "hit".to_owned())],
            &body,
            keep,
        ));
    }

    // On a miss the computation also populates the cache, so even a
    // deadline-abandoned job warms it for the next request.
    let cache = Arc::clone(&state.cache);
    let insert_key = cache_key.clone();
    let compute_and_insert: Box<dyn FnOnce() -> Result<Vec<u8>, crate::ServeError> + Send> =
        Box::new(move || {
            let body = compute()?;
            cache.insert(insert_key, Arc::from(body.clone().into_boxed_slice()));
            Ok(body)
        });

    // Tier 4: heavy misses park on the single-flight.
    if matched.is_heavy() {
        return Outcome::Park(ParkRequest {
            key: cache_key,
            route: matched.label(),
            compute: compute_and_insert,
            received,
        });
    }

    // Tier 3: light compute (closed-form /v1/cr outside the memo
    // lattice) answers inline.
    match compute_and_insert() {
        Ok(body) => {
            state.metrics.observe(matched.label(), 200, received.elapsed());
            Outcome::Inline(http::response_bytes(
                200,
                "application/json",
                &[("X-Cache", "miss".to_owned())],
                &body,
                keep,
            ))
        }
        Err(error) => {
            state.metrics.observe(matched.label(), error.status(), received.elapsed());
            Outcome::Inline(http::error_bytes(error.status(), error.message(), &[], keep))
        }
    }
}

/// Parks a heavy miss on its flight; the creator submits the one pool
/// job, coalesced followers just count the metric. A full queue lands
/// the flight immediately with `503 + Retry-After` for every waiter.
fn park_on_flight(stream: TcpStream, park: ParkRequest, state: &Arc<ServerState>) {
    let ParkRequest { key, route, compute, received } = park;
    match state.flights.park(&key, Waiter { stream, received }) {
        Parked::Coalesced => state.metrics.coalesced(),
        Parked::Created => {
            let job = Job {
                key: key.clone(),
                flights: Arc::clone(&state.flights),
                route,
                compute,
                deadline: received + state.config.request_timeout,
            };
            if state.pool.try_submit(job).is_err() {
                let waiters = state.flights.land(&key);
                pool::respond_waiters_error(
                    waiters,
                    route,
                    &state.metrics,
                    503,
                    "admission queue is full, retry shortly",
                    &[("Retry-After", "1".to_owned())],
                );
            }
        }
    }
}

/// Writes as much pending output as the socket accepts.
fn try_flush(conn: &mut Connection) -> io::Result<()> {
    while conn.pending_output() {
        match conn.stream.write(&conn.out[conn.written..]) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "peer stopped reading")),
            Ok(n) => {
                conn.written += n;
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    if !conn.pending_output() {
        conn.out.clear();
        conn.written = 0;
    }
    Ok(())
}

/// Closes connections with no traffic inside the idle window. This is
/// the slowloris backstop: a half-written request header costs one
/// buffer for at most `idle_timeout`.
fn sweep_idle(poller: &Poller, conns: &mut HashMap<i32, Connection>, idle_timeout: Duration) {
    let expired: Vec<i32> = conns
        .iter()
        .filter(|(_, conn)| conn.last_activity.elapsed() >= idle_timeout)
        .map(|(fd, _)| *fd)
        .collect();
    for fd in expired {
        let _ = poller.del(fd);
        conns.remove(&fd);
    }
}
