//! Service configuration: listen address, worker pool sizing, cache
//! budget, admission-queue depth and per-request deadline.

use std::time::Duration;

/// The default listen address of `faultline serve`.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7171";

/// Tuning knobs for the query service.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Worker threads executing heavy computations; `None` defers to
    /// [`faultline_core::ParallelConfig`]'s resolution (the
    /// `FAULTLINE_THREADS` environment variable, then core count).
    pub threads: Option<usize>,
    /// Total response-cache byte budget across all shards.
    pub cache_bytes: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
    /// Admission-queue capacity; a full queue answers
    /// `503 Service Unavailable` with a `Retry-After` header.
    pub queue_capacity: usize,
    /// Per-request deadline measured from admission: a request that is
    /// still queued or computing when it expires answers
    /// `504 Gateway Timeout`.
    pub request_timeout: Duration,
    /// Bind the listener with `SO_REUSEPORT` so multiple shard
    /// processes (or in-process servers) can share the address and let
    /// the kernel balance accepts across them.
    pub reuse_port: bool,
    /// Largest `n` of the precomputed `/v1/cr` closed-form lattice
    /// (every valid `(n, f)` with `n <= memo_max_n` is serialized at
    /// startup and served without touching the cache or the pool).
    /// `0` disables the tier.
    pub memo_max_n: usize,
    /// Keep-alive connections idle longer than this are closed by the
    /// event loop's sweep (slowloris hygiene: a half-written request
    /// holds one buffer, never a thread, and not forever).
    pub idle_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: DEFAULT_ADDR.to_owned(),
            threads: None,
            cache_bytes: 64 * 1024 * 1024,
            cache_shards: 16,
            queue_capacity: 64,
            request_timeout: Duration::from_secs(60),
            reuse_port: false,
            memo_max_n: 64,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

impl ServeConfig {
    /// The resolved worker-thread count (never zero).
    #[must_use]
    pub fn resolved_threads(&self) -> usize {
        faultline_core::ParallelConfig { threads: self.threads, grain: None }.resolved_threads()
    }

    /// Validates cross-field constraints.
    ///
    /// # Errors
    ///
    /// Rejects a zero cache shard count, a zero admission queue, and a
    /// zero request timeout.
    pub fn validate(&self) -> Result<(), String> {
        if self.cache_shards == 0 {
            return Err("cache_shards must be at least 1".to_owned());
        }
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be at least 1".to_owned());
        }
        if self.request_timeout.is_zero() {
            return Err("request_timeout must be positive".to_owned());
        }
        if self.idle_timeout.is_zero() {
            return Err("idle_timeout must be positive".to_owned());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        let config = ServeConfig::default();
        assert!(config.validate().is_ok());
        assert!(config.resolved_threads() >= 1);
    }

    #[test]
    fn zero_knobs_are_rejected() {
        assert!(ServeConfig { cache_shards: 0, ..ServeConfig::default() }.validate().is_err());
        assert!(ServeConfig { queue_capacity: 0, ..ServeConfig::default() }.validate().is_err());
        assert!(ServeConfig { request_timeout: Duration::ZERO, ..ServeConfig::default() }
            .validate()
            .is_err());
        assert!(ServeConfig { idle_timeout: Duration::ZERO, ..ServeConfig::default() }
            .validate()
            .is_err());
    }

    #[test]
    fn memo_tier_defaults_on_and_can_be_disabled() {
        let config = ServeConfig::default();
        assert_eq!(config.memo_max_n, 64);
        assert!(!config.reuse_port);
        let off = ServeConfig { memo_max_n: 0, ..ServeConfig::default() };
        assert!(off.validate().is_ok(), "a disabled memo tier is valid");
    }
}
