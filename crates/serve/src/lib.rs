//! # faultline-serve
//!
//! A dependency-light HTTP/1.1 JSON query service over the faultline
//! analysis stack, built on a readiness-based epoll event loop (raw
//! syscall FFI in [`sys`], no `libc` crate):
//!
//! * **Routes** — `GET /v1/cr?n=&f=` (closed-form competitive-ratio
//!   report), `GET /v1/table1` (regenerated Table 1),
//!   `POST /v1/scenario` (named presets with explicit seeds, or full
//!   scenario/trace documents), `POST /v1/supremum` (empirical
//!   supremum), `POST /v1/optimize` (schedule-space optimizer gap
//!   report), plus `GET /healthz` and `GET /metrics`.
//! * **Event loop** — one thread owns accept/read/write over
//!   non-blocking sockets with HTTP/1.1 keep-alive; a half-written
//!   request never occupies more than its own connection (no
//!   thread-per-connection slowloris exposure).
//! * **Serving tiers** — `GET /v1/cr` is answered from a precomputed
//!   closed-form memo lattice ([`memo`], `X-Cache: memo`); other
//!   requests hit the sharded LRU (`X-Cache: hit`), compute inline when
//!   light, or park on the bounded worker pool when heavy.
//! * **Single-flight coalescing** — concurrent misses on one canonical
//!   cache key compute once ([`flight`]); every coalesced connection
//!   receives the byte-identical response.
//! * **Backpressure** — a bounded worker pool with a bounded admission
//!   queue; a full queue answers `503 + Retry-After`, an expired
//!   per-request deadline answers `504`.
//! * **Scale-out** — `SO_REUSEPORT` shard mode (`faultline serve
//!   --shards=N`) and a deterministic seeded load generator
//!   ([`loadgen`], `faultline loadgen`).
//! * **Operability** — plain-text metrics (including per-tier
//!   counters), graceful drain on SIGINT/SIGTERM that finishes parked
//!   work and is not blocked by idle keep-alive connections.
//!
//! The binary surface lives in the `faultline` CLI (`faultline serve`,
//! `faultline query`, `faultline loadgen`); this crate is the library
//! behind it.

pub mod cache;
pub mod client;
pub mod config;
pub mod flight;
pub mod handlers;
pub mod http;
pub mod loadgen;
pub mod memo;
pub mod metrics;
pub mod pool;
pub mod router;
pub mod server;
pub mod signal;
pub mod sys;

pub use cache::ResponseCache;
pub use config::{ServeConfig, DEFAULT_ADDR};
pub use metrics::Metrics;
pub use server::{Server, ServerHandle, ServerState};

/// A request-level failure with its HTTP status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The client sent something invalid (400).
    BadRequest(String),
    /// The service failed internally (500).
    Internal(String),
}

impl ServeError {
    /// The HTTP status code this error answers with.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            ServeError::BadRequest(_) => 400,
            ServeError::Internal(_) => 500,
        }
    }

    /// The human-readable message.
    #[must_use]
    pub fn message(&self) -> &str {
        match self {
            ServeError::BadRequest(message) | ServeError::Internal(message) => message,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}: {}",
            self.status(),
            crate::http::reason_phrase(self.status()),
            self.message()
        )
    }
}

impl std::error::Error for ServeError {}

impl From<faultline_core::Error> for ServeError {
    fn from(error: faultline_core::Error) -> Self {
        use faultline_core::Error;
        match &error {
            // Client-attributable: bad parameters or a document whose
            // contents fail domain checks (e.g. a diverging trace).
            Error::InvalidParameters { .. } | Error::InvalidBeta { .. } | Error::Domain { .. } => {
                ServeError::BadRequest(error.to_string())
            }
            _ => ServeError::Internal(error.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_match_variants() {
        assert_eq!(ServeError::BadRequest("x".into()).status(), 400);
        assert_eq!(ServeError::Internal("x".into()).status(), 500);
        assert_eq!(ServeError::BadRequest("nope".into()).to_string(), "400 Bad Request: nope");
    }

    #[test]
    fn core_errors_map_onto_statuses() {
        let invalid = faultline_core::Params::new(2, 2).expect_err("f >= n");
        assert_eq!(ServeError::from(invalid).status(), 400);
        let domain = faultline_core::Error::domain("diverged");
        assert_eq!(ServeError::from(domain).status(), 400);
    }
}
