//! Service metrics: request counts by route and status, a latency
//! histogram, cache statistics, queue depth and worker utilization,
//! rendered as a plain-text document for `GET /metrics`
//! (Prometheus-style exposition, one `name{labels} value` per line).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::cache::ResponseCache;

/// Upper bounds (milliseconds) of the latency histogram buckets; the
/// final implicit bucket is `+Inf`.
pub const LATENCY_BUCKETS_MS: [u64; 10] = [1, 2, 5, 10, 25, 50, 100, 250, 1000, 5000];

/// Shared service metrics. All counters are monotonically increasing;
/// gauges reflect the current state.
pub struct Metrics {
    requests: Mutex<BTreeMap<(String, u16), u64>>,
    latency_buckets: [AtomicU64; LATENCY_BUCKETS_MS.len() + 1],
    latency_count: AtomicU64,
    latency_sum_us: AtomicU64,
    rejected_total: AtomicU64,
    timeout_total: AtomicU64,
    coalesced_total: AtomicU64,
    memo_hits_total: AtomicU64,
    pool_jobs_total: AtomicU64,
    connections_total: AtomicU64,
    keepalive_reuses_total: AtomicU64,
    queue_depth: AtomicUsize,
    workers_busy: AtomicUsize,
    workers_total: usize,
}

impl Metrics {
    /// Creates zeroed metrics for a pool of `workers_total` workers.
    #[must_use]
    pub fn new(workers_total: usize) -> Self {
        Metrics {
            requests: Mutex::new(BTreeMap::new()),
            latency_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            latency_count: AtomicU64::new(0),
            latency_sum_us: AtomicU64::new(0),
            rejected_total: AtomicU64::new(0),
            timeout_total: AtomicU64::new(0),
            coalesced_total: AtomicU64::new(0),
            memo_hits_total: AtomicU64::new(0),
            pool_jobs_total: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            keepalive_reuses_total: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            workers_busy: AtomicUsize::new(0),
            workers_total,
        }
    }

    /// Records one completed request: route label, response status and
    /// end-to-end latency.
    pub fn observe(&self, route: &str, status: u16, latency: Duration) {
        *self
            .requests
            .lock()
            .expect("metrics map poisoned")
            .entry((route.to_owned(), status))
            .or_insert(0) += 1;
        let ms = latency.as_millis() as u64;
        let bucket = LATENCY_BUCKETS_MS.iter().position(|&bound| ms <= bound);
        let index = bucket.unwrap_or(LATENCY_BUCKETS_MS.len());
        self.latency_buckets[index].fetch_add(1, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(latency.as_micros() as u64, Ordering::Relaxed);
        if status == 503 {
            self.rejected_total.fetch_add(1, Ordering::Relaxed);
        }
        if status == 504 {
            self.timeout_total.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Sets the admission-queue depth gauge.
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// Records one request coalesced onto an existing in-flight
    /// computation (single-flight follower; no pool job submitted).
    pub fn coalesced(&self) {
        self.coalesced_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Cumulative count of coalesced (single-flight follower) requests.
    #[must_use]
    pub fn coalesced_requests(&self) -> u64 {
        self.coalesced_total.load(Ordering::Relaxed)
    }

    /// Records one `/v1/cr` answered from the precomputed lattice.
    pub fn memo_hit(&self) {
        self.memo_hits_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Cumulative count of memo-tier hits.
    #[must_use]
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits_total.load(Ordering::Relaxed)
    }

    /// Records one job starting execution on the worker pool.
    pub fn pool_job(&self) {
        self.pool_jobs_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Cumulative count of jobs the worker pool executed.
    #[must_use]
    pub fn pool_jobs(&self) -> u64 {
        self.pool_jobs_total.load(Ordering::Relaxed)
    }

    /// Records one accepted connection.
    pub fn connection_accepted(&self) {
        self.connections_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Cumulative count of accepted connections.
    #[must_use]
    pub fn connections(&self) -> u64 {
        self.connections_total.load(Ordering::Relaxed)
    }

    /// Records a second-or-later request on a persistent connection.
    pub fn keepalive_reuse(&self) {
        self.keepalive_reuses_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Cumulative count of keep-alive connection reuses.
    #[must_use]
    pub fn keepalive_reuses(&self) -> u64 {
        self.keepalive_reuses_total.load(Ordering::Relaxed)
    }

    /// Marks one worker as busy (on job start).
    pub fn worker_busy(&self) {
        self.workers_busy.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one worker as idle (on job end).
    pub fn worker_idle(&self) {
        self.workers_busy.fetch_sub(1, Ordering::Relaxed);
    }

    /// The number of workers currently executing a job.
    #[must_use]
    pub fn workers_busy(&self) -> usize {
        self.workers_busy.load(Ordering::Relaxed)
    }

    /// Cumulative count of requests answered with `status` on `route`.
    #[must_use]
    pub fn requests_for(&self, route: &str, status: u16) -> u64 {
        *self
            .requests
            .lock()
            .expect("metrics map poisoned")
            .get(&(route.to_owned(), status))
            .unwrap_or(&0)
    }

    /// Renders the plain-text metrics document.
    #[must_use]
    pub fn render(&self, cache: &ResponseCache) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("# faultline-serve metrics\n");

        out.push_str("# TYPE faultline_requests_total counter\n");
        for ((route, status), count) in self.requests.lock().expect("metrics map poisoned").iter() {
            out.push_str(&format!(
                "faultline_requests_total{{route=\"{route}\",status=\"{status}\"}} {count}\n"
            ));
        }

        out.push_str("# TYPE faultline_request_latency_ms histogram\n");
        let mut cumulative = 0u64;
        for (i, bound) in LATENCY_BUCKETS_MS.iter().enumerate() {
            cumulative += self.latency_buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "faultline_request_latency_ms_bucket{{le=\"{bound}\"}} {cumulative}\n"
            ));
        }
        cumulative += self.latency_buckets[LATENCY_BUCKETS_MS.len()].load(Ordering::Relaxed);
        out.push_str(&format!("faultline_request_latency_ms_bucket{{le=\"+Inf\"}} {cumulative}\n"));
        out.push_str(&format!(
            "faultline_request_latency_ms_count {}\n",
            self.latency_count.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "faultline_request_latency_ms_sum_us {}\n",
            self.latency_sum_us.load(Ordering::Relaxed)
        ));

        out.push_str("# TYPE faultline_cache counters and gauges\n");
        out.push_str(&format!("faultline_cache_hits_total {}\n", cache.hits()));
        out.push_str(&format!("faultline_cache_misses_total {}\n", cache.misses()));
        out.push_str(&format!("faultline_cache_insertions_total {}\n", cache.insertions()));
        out.push_str(&format!("faultline_cache_hit_ratio {:.6}\n", cache.hit_ratio()));
        out.push_str(&format!("faultline_cache_bytes {}\n", cache.live_bytes()));
        out.push_str(&format!("faultline_cache_entries {}\n", cache.live_entries()));

        out.push_str("# TYPE faultline_serving_tiers counters\n");
        out.push_str(&format!(
            "faultline_cr_memo_hits_total {}\n",
            self.memo_hits_total.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "faultline_coalesced_requests_total {}\n",
            self.coalesced_total.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "faultline_pool_jobs_total {}\n",
            self.pool_jobs_total.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "faultline_connections_total {}\n",
            self.connections_total.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "faultline_keepalive_reuses_total {}\n",
            self.keepalive_reuses_total.load(Ordering::Relaxed)
        ));

        out.push_str("# TYPE faultline_pool gauges\n");
        out.push_str(&format!(
            "faultline_queue_depth {}\n",
            self.queue_depth.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "faultline_rejected_total {}\n",
            self.rejected_total.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "faultline_timeout_total {}\n",
            self.timeout_total.load(Ordering::Relaxed)
        ));
        let busy = self.workers_busy.load(Ordering::Relaxed);
        out.push_str(&format!("faultline_workers_busy {busy}\n"));
        out.push_str(&format!("faultline_workers_total {}\n", self.workers_total));
        let utilization =
            if self.workers_total == 0 { 0.0 } else { busy as f64 / self.workers_total as f64 };
        out.push_str(&format!("faultline_worker_utilization {utilization:.6}\n"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_buckets_and_counters() {
        let metrics = Metrics::new(4);
        metrics.observe("/v1/cr", 200, Duration::from_millis(3));
        metrics.observe("/v1/cr", 200, Duration::from_millis(3));
        metrics.observe("/v1/scenario", 503, Duration::from_micros(200));
        metrics.observe("/v1/supremum", 504, Duration::from_secs(10));
        assert_eq!(metrics.requests_for("/v1/cr", 200), 2);
        assert_eq!(metrics.requests_for("/v1/scenario", 503), 1);
        assert_eq!(metrics.rejected_total.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.timeout_total.load(Ordering::Relaxed), 1);

        let cache = ResponseCache::new(1024, 2);
        let text = metrics.render(&cache);
        assert!(text.contains("faultline_requests_total{route=\"/v1/cr\",status=\"200\"} 2"));
        assert!(text.contains("faultline_request_latency_ms_bucket{le=\"5\"} 3"));
        assert!(text.contains("faultline_request_latency_ms_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("faultline_queue_depth 0"));
        assert!(text.contains("faultline_workers_total 4"));
    }

    #[test]
    fn tier_counters_render_and_accumulate() {
        let metrics = Metrics::new(1);
        metrics.memo_hit();
        metrics.memo_hit();
        metrics.coalesced();
        metrics.pool_job();
        metrics.connection_accepted();
        metrics.keepalive_reuse();
        assert_eq!(metrics.memo_hits(), 2);
        assert_eq!(metrics.coalesced_requests(), 1);
        assert_eq!(metrics.pool_jobs(), 1);
        assert_eq!(metrics.connections(), 1);
        assert_eq!(metrics.keepalive_reuses(), 1);
        let cache = ResponseCache::new(16, 1);
        let text = metrics.render(&cache);
        assert!(text.contains("faultline_cr_memo_hits_total 2"));
        assert!(text.contains("faultline_coalesced_requests_total 1"));
        assert!(text.contains("faultline_pool_jobs_total 1"));
        assert!(text.contains("faultline_connections_total 1"));
        assert!(text.contains("faultline_keepalive_reuses_total 1"));
    }

    #[test]
    fn worker_gauges_track_busy_count() {
        let metrics = Metrics::new(2);
        metrics.worker_busy();
        let cache = ResponseCache::new(16, 1);
        assert!(metrics.render(&cache).contains("faultline_workers_busy 1"));
        assert!(metrics.render(&cache).contains("faultline_worker_utilization 0.5"));
        metrics.worker_idle();
        assert!(metrics.render(&cache).contains("faultline_workers_busy 0"));
    }
}
