//! Loopback HTTP client for `faultline query`, the load generator and
//! the integration tests. Two dialects:
//!
//! * [`query`] — one request per connection (`Connection: close`).
//! * [`Session`] — a persistent keep-alive connection carrying many
//!   requests, with `Content-Length` framing.
//!
//! Both retry exactly once on a reset-class failure (ECONNRESET,
//! broken pipe, unexpected EOF): a keep-alive peer may legitimately
//! close a connection the instant before a request lands on it (the
//! stale-connection race), and a fresh connection resolves it. A
//! second failure is reported.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Default socket read timeout.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(120);

/// A response as seen by the client.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response headers as `(name, value)` pairs, in wire order.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// The first header named `name` (case-insensitive).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Whether a request failure warrants the single fresh-connection
/// retry (reset-class: the peer went away under us).
fn is_retryable(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
    )
}

fn connect(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    let _ = stream.set_nodelay(true);
    Ok(stream)
}

/// Writes one request and reads one `Content-Length`-framed response.
fn send_and_read(
    stream: &mut TcpStream,
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    close: bool,
) -> io::Result<Response> {
    let payload = body.unwrap_or("");
    let connection = if close { "close" } else { "keep-alive" };
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{payload}",
        payload.len(),
    );
    stream.write_all(request.as_bytes())?;
    read_response(stream)
}

/// Reads one framed response off the stream.
fn read_response(stream: &mut TcpStream) -> io::Result<Response> {
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                if raw.is_empty() {
                    "connection closed before any response bytes"
                } else {
                    "connection closed mid-header"
                },
            ));
        }
        raw.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response head is not UTF-8"))?
        .to_owned();
    let content_length = head
        .split("\r\n")
        .filter_map(|line| line.split_once(':'))
        .find(|(n, _)| n.trim().eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok());
    match content_length {
        Some(len) => {
            let total = head_end + 4 + len;
            while raw.len() < total {
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-body",
                    ));
                }
                raw.extend_from_slice(&chunk[..n]);
            }
            raw.truncate(total);
        }
        // No Content-Length: close-delimited framing.
        None => {
            stream.read_to_end(&mut raw)?;
        }
    }
    parse_response(&raw).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// The shared retry loop: `slot` holds a reusable connection between
/// calls (empty for the one-shot dialect).
fn request_with_retry(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
    keep_alive: bool,
    slot: &mut Option<TcpStream>,
) -> Result<Response, String> {
    let mut last_error: Option<io::Error> = None;
    for attempt in 0..2 {
        let mut stream = match slot.take() {
            Some(stream) => stream,
            None => match connect(addr, timeout) {
                Ok(stream) => stream,
                Err(e) => return Err(format!("cannot connect to {addr}: {e}")),
            },
        };
        match send_and_read(&mut stream, addr, method, path, body, !keep_alive) {
            Ok(response) => {
                let peer_closes =
                    response.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"));
                if keep_alive && !peer_closes {
                    *slot = Some(stream);
                }
                return Ok(response);
            }
            Err(e) if attempt == 0 && is_retryable(e.kind()) => last_error = Some(e),
            Err(e) => return Err(format!("request failed: {e}")),
        }
    }
    let error = last_error.expect("loop exits early unless a retryable error was stored");
    Err(format!("request failed after retry: {error}"))
}

/// A persistent keep-alive connection to one server address.
pub struct Session {
    addr: String,
    timeout: Duration,
    stream: Option<TcpStream>,
}

impl Session {
    /// A session with the default read timeout. Connects lazily.
    #[must_use]
    pub fn new(addr: &str) -> Session {
        Session::with_timeout(addr, DEFAULT_TIMEOUT)
    }

    /// A session with an explicit socket read timeout.
    #[must_use]
    pub fn with_timeout(addr: &str, timeout: Duration) -> Session {
        Session { addr: addr.to_owned(), timeout, stream: None }
    }

    /// Sends one request over the persistent connection, reconnecting
    /// (and retrying once) when the server closed it under us.
    ///
    /// # Errors
    ///
    /// Returns `Err(String)` on connection, write, read or parse
    /// failures that survive the single retry.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Response, String> {
        request_with_retry(&self.addr, method, path, body, self.timeout, true, &mut self.stream)
    }

    /// Whether the session currently holds a live connection.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }
}

/// Sends one HTTP/1.1 request (`Connection: close`) to `addr` and
/// reads the full response, retrying once on a reset-class failure.
///
/// # Errors
///
/// Returns `Err(String)` on connection, write, read or parse failures.
pub fn query(addr: &str, method: &str, path: &str, body: Option<&str>) -> Result<Response, String> {
    query_with_timeout(addr, method, path, body, DEFAULT_TIMEOUT)
}

/// [`query`] with an explicit socket read timeout.
///
/// # Errors
///
/// Returns `Err(String)` on connection, write, read or parse failures.
pub fn query_with_timeout(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> Result<Response, String> {
    let mut slot = None;
    request_with_retry(addr, method, path, body, timeout, false, &mut slot)
}

fn parse_response(raw: &[u8]) -> Result<Response, String> {
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| "response has no header/body separator".to_owned())?;
    let head =
        std::str::from_utf8(&raw[..split]).map_err(|_| "response head is not UTF-8".to_owned())?;
    let body = raw[split + 4..].to_vec();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| "empty response".to_owned())?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| format!("malformed status line: {status_line}"))?;
    let headers = lines
        .filter_map(|line| {
            line.split_once(':').map(|(n, v)| (n.trim().to_owned(), v.trim().to_owned()))
        })
        .collect();
    Ok(Response { status, headers, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn responses_parse() {
        let raw =
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nX-Cache: hit\r\n\r\n{\"ok\":1}\n";
        let response = parse_response(raw).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.header("x-cache"), Some("hit"));
        assert_eq!(response.text(), "{\"ok\":1}\n");
    }

    #[test]
    fn malformed_responses_are_errors() {
        assert!(parse_response(b"garbage").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }

    /// Reads until the request's blank line, so the peer's write
    /// completed before we act on the connection.
    fn read_request_head(stream: &mut TcpStream) {
        let mut buf = Vec::new();
        let mut byte = [0u8; 1];
        while !buf.ends_with(b"\r\n\r\n") {
            match stream.read(&mut byte) {
                Ok(0) | Err(_) => break,
                Ok(_) => buf.extend_from_slice(&byte),
            }
        }
    }

    fn ok_response(keep_alive: bool) -> String {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        format!(
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 3\r\nConnection: {connection}\r\n\r\n{{}}\n"
        )
    }

    #[test]
    fn query_retries_exactly_once_after_a_reset() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let accepts = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&accepts);
        let server = std::thread::spawn(move || {
            // First accept: read the request, then close without
            // answering (the stale keep-alive race, as the client sees
            // it). Second accept: answer properly.
            let (mut first, _) = listener.accept().unwrap();
            counter.fetch_add(1, Ordering::SeqCst);
            read_request_head(&mut first);
            drop(first);
            let (mut second, _) = listener.accept().unwrap();
            counter.fetch_add(1, Ordering::SeqCst);
            read_request_head(&mut second);
            second.write_all(ok_response(false).as_bytes()).unwrap();
        });
        let response = query(&addr, "GET", "/healthz", None).expect("the retry succeeds");
        assert_eq!(response.status, 200);
        server.join().unwrap();
        assert_eq!(accepts.load(Ordering::SeqCst), 2, "one original attempt plus one retry");
    }

    #[test]
    fn a_second_reset_is_a_hard_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let accepts = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&accepts);
        let client = std::thread::spawn(move || query(&addr, "GET", "/healthz", None));
        // Exactly two connection attempts arrive; both get closed.
        for _ in 0..2 {
            let (mut conn, _) = listener.accept().unwrap();
            counter.fetch_add(1, Ordering::SeqCst);
            read_request_head(&mut conn);
            drop(conn);
        }
        let result = client.join().unwrap();
        assert!(result.is_err(), "two resets exhaust the single retry");
        assert_eq!(accepts.load(Ordering::SeqCst), 2);
        // No third attempt is pending.
        listener.set_nonblocking(true).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            matches!(listener.accept(), Err(e) if e.kind() == io::ErrorKind::WouldBlock),
            "the client must not retry a second time"
        );
    }

    #[test]
    fn sessions_reuse_one_connection_for_many_requests() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let accepts = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&accepts);
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            counter.fetch_add(1, Ordering::SeqCst);
            for _ in 0..3 {
                read_request_head(&mut conn);
                conn.write_all(ok_response(true).as_bytes()).unwrap();
            }
        });
        let mut session = Session::new(&addr);
        for _ in 0..3 {
            let response = session.request("GET", "/healthz", None).unwrap();
            assert_eq!(response.status, 200);
            assert!(session.is_connected(), "keep-alive responses keep the connection");
        }
        server.join().unwrap();
        assert_eq!(accepts.load(Ordering::SeqCst), 1, "three requests, one connection");
    }

    #[test]
    fn a_connection_close_response_drops_the_session_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            read_request_head(&mut conn);
            conn.write_all(ok_response(false).as_bytes()).unwrap();
        });
        let mut session = Session::new(&addr);
        let response = session.request("GET", "/healthz", None).unwrap();
        assert_eq!(response.status, 200);
        assert!(!session.is_connected(), "Connection: close is honored");
        server.join().unwrap();
    }
}
