//! Loopback HTTP client for `faultline query` and the integration
//! tests: one request per connection, same dialect the server speaks.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A response as seen by the client.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response headers as `(name, value)` pairs, in wire order.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// The first header named `name` (case-insensitive).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends one HTTP/1.1 request to `addr` and reads the full response.
///
/// # Errors
///
/// Returns `Err(String)` on connection, write, read or parse failures.
pub fn query(addr: &str, method: &str, path: &str, body: Option<&str>) -> Result<Response, String> {
    query_with_timeout(addr, method, path, body, Duration::from_secs(120))
}

/// [`query`] with an explicit socket read timeout.
///
/// # Errors
///
/// Returns `Err(String)` on connection, write, read or parse failures.
pub fn query_with_timeout(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> Result<Response, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream.set_read_timeout(Some(timeout)).map_err(|e| format!("set_read_timeout: {e}"))?;
    let _ = stream.set_nodelay(true);
    let payload = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len(),
    );
    stream.write_all(request.as_bytes()).map_err(|e| format!("write failed: {e}"))?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| format!("read failed: {e}"))?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> Result<Response, String> {
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| "response has no header/body separator".to_owned())?;
    let head =
        std::str::from_utf8(&raw[..split]).map_err(|_| "response head is not UTF-8".to_owned())?;
    let body = raw[split + 4..].to_vec();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| "empty response".to_owned())?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| format!("malformed status line: {status_line}"))?;
    let headers = lines
        .filter_map(|line| {
            line.split_once(':').map(|(n, v)| (n.trim().to_owned(), v.trim().to_owned()))
        })
        .collect();
    Ok(Response { status, headers, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_parse() {
        let raw =
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nX-Cache: hit\r\n\r\n{\"ok\":1}\n";
        let response = parse_response(raw).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.header("x-cache"), Some("hit"));
        assert_eq!(response.text(), "{\"ok\":1}\n");
    }

    #[test]
    fn malformed_responses_are_errors() {
        assert!(parse_response(b"garbage").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }
}
