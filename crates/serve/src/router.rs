//! Route table: maps `(method, path)` onto the service's endpoints.

/// The service's endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `GET /healthz` — liveness probe.
    Healthz,
    /// `GET /metrics` — plain-text metrics.
    Metrics,
    /// `GET /v1/cr?n=&f=` — closed-form competitive-ratio report.
    Cr,
    /// `GET /v1/table1[?measure=true]` — regenerated Table 1 rows.
    Table1,
    /// `POST /v1/scenario` — scenario (or trace) document execution.
    Scenario,
    /// `POST /v1/supremum` — empirical supremum measurement.
    Supremum,
    /// `POST /v1/optimize` — schedule-space optimizer gap report.
    Optimize,
}

impl Route {
    /// The metrics label (also the canonical path) of the route.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Route::Healthz => "/healthz",
            Route::Metrics => "/metrics",
            Route::Cr => "/v1/cr",
            Route::Table1 => "/v1/table1",
            Route::Scenario => "/v1/scenario",
            Route::Supremum => "/v1/supremum",
            Route::Optimize => "/v1/optimize",
        }
    }

    /// Whether the route runs real computation and therefore goes
    /// through the worker pool on a cache miss. Light routes (and cache
    /// hits on heavy ones) are answered inline on the accept thread, so
    /// health and metrics stay responsive under saturation.
    #[must_use]
    pub fn is_heavy(self) -> bool {
        matches!(self, Route::Table1 | Route::Scenario | Route::Supremum | Route::Optimize)
    }
}

/// The outcome of routing a request line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routed {
    /// A known endpoint reached with its supported method.
    Matched(Route),
    /// A known path reached with the wrong method; answer 405 and
    /// advertise the allowed one.
    MethodNotAllowed(&'static str),
    /// No such path; answer 404.
    NotFound,
}

/// Routes a `(method, path)` pair.
#[must_use]
pub fn route(method: &str, path: &str) -> Routed {
    let (expected, route) = match path {
        "/healthz" => ("GET", Route::Healthz),
        "/metrics" => ("GET", Route::Metrics),
        "/v1/cr" => ("GET", Route::Cr),
        "/v1/table1" => ("GET", Route::Table1),
        "/v1/scenario" => ("POST", Route::Scenario),
        "/v1/supremum" => ("POST", Route::Supremum),
        "/v1/optimize" => ("POST", Route::Optimize),
        _ => return Routed::NotFound,
    };
    if method == expected {
        Routed::Matched(route)
    } else {
        Routed::MethodNotAllowed(expected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_routes_match_their_methods() {
        assert_eq!(route("GET", "/healthz"), Routed::Matched(Route::Healthz));
        assert_eq!(route("GET", "/v1/cr"), Routed::Matched(Route::Cr));
        assert_eq!(route("POST", "/v1/scenario"), Routed::Matched(Route::Scenario));
        assert_eq!(route("POST", "/v1/supremum"), Routed::Matched(Route::Supremum));
        assert_eq!(route("POST", "/v1/optimize"), Routed::Matched(Route::Optimize));
        assert_eq!(route("GET", "/v1/table1"), Routed::Matched(Route::Table1));
    }

    #[test]
    fn wrong_method_advertises_the_right_one() {
        assert_eq!(route("POST", "/v1/cr"), Routed::MethodNotAllowed("GET"));
        assert_eq!(route("GET", "/v1/supremum"), Routed::MethodNotAllowed("POST"));
        assert_eq!(route("GET", "/v1/optimize"), Routed::MethodNotAllowed("POST"));
        assert_eq!(route("DELETE", "/nope"), Routed::NotFound);
    }

    #[test]
    fn only_compute_routes_are_heavy() {
        assert!(!Route::Healthz.is_heavy());
        assert!(!Route::Metrics.is_heavy());
        assert!(!Route::Cr.is_heavy());
        assert!(Route::Table1.is_heavy());
        assert!(Route::Scenario.is_heavy());
        assert!(Route::Supremum.is_heavy());
        assert!(Route::Optimize.is_heavy());
    }
}
