//! Minimal SIGINT/SIGTERM latch without a libc dependency: `signal(2)`
//! is in every libc the workspace targets, and an `AtomicBool` store is
//! async-signal-safe. The accept loop polls [`shutdown_requested`]
//! between accepts and starts a graceful drain when it flips.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: on_signal only stores to an atomic, which is
        // async-signal-safe; the handler pointer outlives the process.
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handlers (no-op off Unix).
pub fn install() {
    imp::install();
}

/// Whether a termination signal has been received.
#[must_use]
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Requests shutdown programmatically, as if a signal had arrived.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clears the latch (so one process can serve, drain and serve again —
/// primarily for tests).
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}
