//! The precomputed closed-form tier.
//!
//! Thm-1 CR and `alpha(n)` are pure math: the whole `(n, f)` lattice up
//! to a configured `n` is serialized once at startup, so `GET /v1/cr`
//! in that range is a `HashMap` probe on the event loop — it touches
//! neither the LRU cache nor the worker pool. Bodies come from
//! [`crate::handlers::cr_body`], the same serializer the request path
//! uses, so the tiers are byte-identical by construction.

use std::collections::HashMap;
use std::sync::Arc;

use faultline_core::CrQuery;

use crate::handlers;

/// Precomputed `/v1/cr` responses for every valid `(n, f)`, `n` up to
/// the configured maximum.
pub struct CrMemo {
    bodies: HashMap<(usize, usize), Arc<[u8]>>,
}

impl CrMemo {
    /// Precomputes the lattice for `1 <= n <= max_n`, `0 <= f < n`,
    /// skipping pairs the closed forms reject. `max_n = 0` builds an
    /// empty memo (the tier is disabled).
    #[must_use]
    pub fn build(max_n: usize) -> CrMemo {
        let mut bodies = HashMap::new();
        for n in 1..=max_n {
            for f in 0..n {
                if let Ok(body) = handlers::cr_body(&CrQuery { n, f }) {
                    bodies.insert((n, f), Arc::from(body.into_boxed_slice()));
                }
            }
        }
        CrMemo { bodies }
    }

    /// The memoized response body for `(n, f)`, if in range.
    #[must_use]
    pub fn get(&self, n: usize, f: usize) -> Option<Arc<[u8]>> {
        self.bodies.get(&(n, f)).map(Arc::clone)
    }

    /// The number of memoized lattice points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bodies.len()
    }

    /// Whether the tier is disabled/empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bodies.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_covers_every_valid_pair() {
        let memo = CrMemo::build(8);
        // Every (n, f) with f < n that the closed forms accept.
        for n in 1..=8usize {
            for f in 0..n {
                let expected = handlers::cr_body(&CrQuery { n, f }).ok();
                let got = memo.get(n, f).map(|b| b.to_vec());
                assert_eq!(expected, got, "memo and request path disagree at ({n}, {f})");
            }
        }
        assert!(memo.get(9, 0).is_none(), "out of range");
        assert!(memo.get(3, 3).is_none(), "f >= n never memoized");
    }

    #[test]
    fn zero_disables_the_tier() {
        let memo = CrMemo::build(0);
        assert!(memo.is_empty());
        assert!(memo.get(3, 1).is_none());
    }

    #[test]
    fn memoized_bodies_match_the_request_path_bitwise() {
        let memo = CrMemo::build(16);
        assert!(!memo.is_empty());
        let fresh = handlers::cr_body(&CrQuery { n: 11, f: 4 }).unwrap();
        assert_eq!(&*memo.get(11, 4).unwrap(), fresh.as_slice());
    }
}
