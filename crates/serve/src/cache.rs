//! Sharded in-memory memoization cache for response bodies.
//!
//! Keys are the **canonical strings** of fully resolved request
//! parameters ([`faultline_core::query::canonical_string`]), so two
//! spellings of the same request share an entry while any parameter
//! difference — notably the seed — always yields a distinct entry: the
//! full canonical string is compared, the 64-bit hash only picks the
//! shard, so hash collisions can never cross-contaminate responses.
//!
//! Each shard is an independent mutex around a `HashMap` plus a
//! recency index (`BTreeMap<tick, key>`); entries are evicted
//! least-recently-used while a shard exceeds its byte budget. Cached
//! bodies are `Arc<[u8]>` handed out without copying, which is what
//! makes cache hits byte-identical to the fresh computation that
//! populated them.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use faultline_core::query::fnv1a64;

struct Entry {
    body: Arc<[u8]>,
    tick: u64,
    bytes: usize,
}

#[derive(Default)]
struct Shard {
    map: HashMap<String, Entry>,
    recency: BTreeMap<u64, String>,
    tick: u64,
    bytes: usize,
}

impl Shard {
    fn touch(&mut self, key: &str) -> Option<Arc<[u8]>> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.map.get_mut(key)?;
        self.recency.remove(&entry.tick);
        entry.tick = tick;
        self.recency.insert(tick, key.to_owned());
        Some(Arc::clone(&entry.body))
    }

    fn insert(&mut self, key: String, body: Arc<[u8]>, budget: usize) {
        let bytes = key.len() + body.len();
        if bytes > budget {
            return; // larger than the whole shard: not cacheable
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some(old) = self.map.remove(&key) {
            self.recency.remove(&old.tick);
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        self.recency.insert(tick, key.clone());
        self.map.insert(key, Entry { body, tick, bytes });
        while self.bytes > budget {
            let Some((&oldest, _)) = self.recency.iter().next() else { break };
            let victim = self.recency.remove(&oldest).expect("tick just observed");
            let evicted = self.map.remove(&victim).expect("recency and map stay in sync");
            self.bytes -= evicted.bytes;
        }
    }
}

/// The sharded LRU response cache.
pub struct ResponseCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    live_bytes: AtomicUsize,
    live_entries: AtomicUsize,
}

impl ResponseCache {
    /// Creates a cache with `total_bytes` split evenly over `shards`
    /// independently locked shards (`shards >= 1`).
    #[must_use]
    pub fn new(total_bytes: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        ResponseCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: total_bytes / shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            live_bytes: AtomicUsize::new(0),
            live_entries: AtomicUsize::new(0),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        let index = (fnv1a64(key.as_bytes()) % self.shards.len() as u64) as usize;
        &self.shards[index]
    }

    /// Looks up a cached response body, refreshing its recency. Counts
    /// a hit or miss.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<Arc<[u8]>> {
        let found = self.shard(key).lock().expect("cache shard poisoned").touch(key);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts (or replaces) a response body, evicting least-recently
    /// used entries while the shard exceeds its byte budget.
    pub fn insert(&self, key: String, body: Arc<[u8]>) {
        self.shard(&key).lock().expect("cache shard poisoned").insert(key, body, self.shard_budget);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        // Insertions only happen on cache misses, so a full-scan gauge
        // refresh here is off the hot (hit) path.
        self.refresh_gauges();
    }

    fn refresh_gauges(&self) {
        let mut bytes = 0usize;
        let mut entries = 0usize;
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            bytes += shard.bytes;
            entries += shard.map.len();
        }
        self.live_bytes.store(bytes, Ordering::Relaxed);
        self.live_entries.store(entries, Ordering::Relaxed);
    }

    /// Cumulative cache hits.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cumulative cache misses.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cumulative insertions.
    #[must_use]
    pub fn insertions(&self) -> u64 {
        self.insertions.load(Ordering::Relaxed)
    }

    /// Bytes currently held (keys + bodies).
    #[must_use]
    pub fn live_bytes(&self) -> usize {
        self.live_bytes.load(Ordering::Relaxed)
    }

    /// Entries currently held.
    #[must_use]
    pub fn live_entries(&self) -> usize {
        self.live_entries.load(Ordering::Relaxed)
    }

    /// The hit ratio over all lookups so far (0 when none).
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(text: &str) -> Arc<[u8]> {
        Arc::from(text.as_bytes().to_vec().into_boxed_slice())
    }

    #[test]
    fn hit_returns_identical_bytes() {
        let cache = ResponseCache::new(1024, 4);
        assert!(cache.get("k").is_none());
        cache.insert("k".to_owned(), body("payload"));
        let hit = cache.get("k").expect("just inserted");
        assert_eq!(&hit[..], b"payload");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert!((cache.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_under_byte_budget() {
        // Single shard, tight budget: keys "a"/"b"/"c" with 9-byte
        // bodies cost 10 bytes each; budget 25 holds two entries.
        let cache = ResponseCache::new(25, 1);
        cache.insert("a".to_owned(), body("123456789"));
        cache.insert("b".to_owned(), body("123456789"));
        assert!(cache.get("a").is_some(), "refresh a so b is the LRU");
        cache.insert("c".to_owned(), body("123456789"));
        assert!(cache.get("a").is_some(), "a was refreshed");
        assert!(cache.get("b").is_none(), "b was the least recently used");
        assert!(cache.get("c").is_some());
        assert!(cache.live_bytes() <= 25);
        assert_eq!(cache.live_entries(), 2);
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let cache = ResponseCache::new(8, 1);
        cache.insert("k".to_owned(), body("far too large for the shard"));
        assert!(cache.get("k").is_none());
        assert_eq!(cache.live_entries(), 0);
    }

    #[test]
    fn replacement_updates_bytes() {
        let cache = ResponseCache::new(64, 1);
        cache.insert("k".to_owned(), body("first"));
        cache.insert("k".to_owned(), body("second-longer"));
        assert_eq!(&cache.get("k").unwrap()[..], b"second-longer");
        assert_eq!(cache.live_entries(), 1);
        assert_eq!(cache.live_bytes(), 1 + "second-longer".len());
    }

    #[test]
    fn distinct_keys_never_share_entries() {
        // Same shard or not, the full key is compared.
        let cache = ResponseCache::new(1 << 20, 2);
        for seed in 0..512u64 {
            cache.insert(format!("seed:{seed}"), body(&format!("body-{seed}")));
        }
        for seed in 0..512u64 {
            let hit = cache.get(&format!("seed:{seed}")).expect("all fit in budget");
            assert_eq!(&hit[..], format!("body-{seed}").as_bytes(), "seed {seed}");
        }
    }
}
