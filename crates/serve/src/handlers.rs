//! Endpoint handlers: each request is *resolved* up front (parsed,
//! validated, defaults filled in) into a canonical cache key plus a
//! deferred compute closure. The key is
//! `<route>|<canonical string of the fully-resolved parameters>`
//! ([`faultline_core::query::canonical_string`]), so equivalent
//! spellings share a cache entry while any semantic difference —
//! including the seed — gets its own.

use faultline_analysis::scenario::{results_to_json, run_document, Scenario};
use faultline_analysis::supremum::SupremumQuery;
use faultline_analysis::table1;
use faultline_core::query::canonical_string;
use faultline_core::CrQuery;
use faultline_opt::OptimizeConfig;
use faultline_scenario::{is_scenario_value, ScenarioDoc};
use faultline_sim::RunTrace;

use crate::http::Request;
use crate::router::Route;
use crate::ServeError;

/// A resolved request: cache key plus the deferred computation.
pub struct Prepared {
    /// Canonical cache key of the fully-resolved parameters.
    pub cache_key: String,
    /// Computes the response body. Runs inline for light routes, on the
    /// worker pool for heavy ones.
    pub compute: Box<dyn FnOnce() -> Result<Vec<u8>, ServeError> + Send>,
}

/// The named scenario presets served by `POST /v1/scenario` with
/// `{"name": ...}`; `(name, scenario JSON)`. The `randomized` preset
/// uses the seedable sweep strategy, so requests may pass an explicit
/// `"seed"` alongside the name.
pub const SCENARIO_PRESETS: &[(&str, &str)] = &[
    ("smoke", r#"{"n": 3, "f": 1, "targets": [2.0, -4.5]}"#),
    ("two-group", r#"{"n": 4, "f": 2, "targets": [1.5, -3.0, 8.0]}"#),
    ("proportional", r#"{"n": 5, "f": 2, "targets": [2.0, -6.0, 12.0]}"#),
    ("explicit-faults", r#"{"n": 4, "f": 2, "targets": [3.0, -5.0], "faulty": [0, 2]}"#),
    (
        "randomized",
        r#"{"n": 3, "f": 1, "strategy": "randomized-sweep", "targets": [2.0, -4.5, 7.0]}"#,
    ),
    // n = 2f + 1 with f Byzantine liars and an f + 1 = 3 claim quorum:
    // the canonical regime in which no coalition of liars can confirm
    // a false position. Lie coins are seed-driven, so requests may
    // pass an explicit "seed" alongside the name.
    (
        "byzantine",
        r#"{"n": 5, "f": 2, "targets": [2.0, -6.0, 12.0], "fault_plan": ["Reliable", "Reliable", "Reliable", {"Byzantine": {"lie_rate": 0.75}}, {"Byzantine": {"lie_rate": 0.75}}], "quorum": 3}"#,
    ),
    // One probabilistically-faulty sensor among reliable peers; each
    // of its visits detects independently with probability 1/2 on the
    // seeded coin stream.
    (
        "p-faulty",
        r#"{"n": 3, "f": 1, "targets": [2.0, -4.5, 7.0], "fault_plan": [{"PFaulty": {"detect_probability": 0.5}}, "Reliable", "Reliable"]}"#,
    ),
];

fn key_for(route: Route, resolved: &serde::Value) -> String {
    format!("{}|{}", route.label(), canonical_string(resolved))
}

fn to_resolved_value<T: serde::Serialize>(value: &T) -> Result<serde::Value, ServeError> {
    serde::to_value(value)
        .map_err(|e| ServeError::Internal(format!("cannot serialize resolved request: {e}")))
}

fn json_body(text: String) -> Vec<u8> {
    let mut bytes = text.into_bytes();
    if bytes.last() != Some(&b'\n') {
        bytes.push(b'\n');
    }
    bytes
}

/// Resolves a request on a compute route into a [`Prepared`] job.
///
/// # Errors
///
/// Returns [`ServeError::BadRequest`] for malformed or invalid
/// parameters; the compute closure reports its own failures.
pub fn prepare(route: Route, request: &Request) -> Result<Prepared, ServeError> {
    match route {
        Route::Cr => prepare_cr(request),
        Route::Table1 => prepare_table1(request),
        Route::Scenario => prepare_scenario(request),
        Route::Supremum => prepare_supremum(request),
        Route::Optimize => prepare_optimize(request),
        Route::Healthz | Route::Metrics => {
            Err(ServeError::Internal(format!("{} is not a compute route", route.label())))
        }
    }
}

fn required_usize(request: &Request, name: &str) -> Result<usize, ServeError> {
    let raw = request
        .query_param(name)
        .ok_or_else(|| ServeError::BadRequest(format!("missing query parameter `{name}`")))?;
    raw.parse().map_err(|_| {
        ServeError::BadRequest(format!("query parameter `{name}` must be a non-negative integer"))
    })
}

/// The response body for a `/v1/cr` query: the single source of truth
/// shared by the request path and the startup memo tier, so both
/// produce byte-identical documents.
///
/// # Errors
///
/// Rejects invalid `(n, f)` with a 400-mapped error.
pub fn cr_body(query: &CrQuery) -> Result<Vec<u8>, ServeError> {
    let report = query.evaluate().map_err(|e| ServeError::BadRequest(e.to_string()))?;
    serde_json::to_string_pretty(&report)
        .map(json_body)
        .map_err(|e| ServeError::Internal(format!("serialization failed: {e}")))
}

fn prepare_cr(request: &Request) -> Result<Prepared, ServeError> {
    let query = CrQuery { n: required_usize(request, "n")?, f: required_usize(request, "f")? };
    // Serialize eagerly: it is closed-form (microseconds), and doing so
    // rejects invalid (n, f) with a 400 before anything is cached.
    let body = cr_body(&query)?;
    let cache_key = key_for(Route::Cr, &to_resolved_value(&query)?);
    let compute: Box<dyn FnOnce() -> Result<Vec<u8>, ServeError> + Send> =
        Box::new(move || Ok(body));
    Ok(Prepared { cache_key, compute })
}

fn prepare_table1(request: &Request) -> Result<Prepared, ServeError> {
    let measure = match request.query_param("measure") {
        None | Some("false" | "0" | "") => false,
        Some("true" | "1") => true,
        Some(other) => {
            return Err(ServeError::BadRequest(format!(
                "query parameter `measure` must be true or false, got `{other}`"
            )))
        }
    };
    let grid = match request.query_param("grid") {
        None => table1::DEFAULT_MEASURE_GRID,
        Some(raw) => {
            let grid: usize = raw.parse().map_err(|_| {
                ServeError::BadRequest(format!(
                    "query parameter `grid` must be a positive integer, got `{raw}`"
                ))
            })?;
            if !(2..=1_000_000).contains(&grid) {
                return Err(ServeError::BadRequest(format!(
                    "query parameter `grid` must be in 2..=1000000, got `{grid}`"
                )));
            }
            grid
        }
    };
    // The grid is part of the resolved request even at its default:
    // `?measure=true` and `?measure=true&grid=64` are the same entry.
    let resolved = serde::Value::Object(vec![
        ("measure".to_owned(), serde::Value::Bool(measure)),
        ("grid".to_owned(), serde::Value::UInt(grid as u64)),
    ]);
    let cache_key = key_for(Route::Table1, &resolved);
    let compute: Box<dyn FnOnce() -> Result<Vec<u8>, ServeError> + Send> = Box::new(move || {
        let rows = table1::regenerate_with_grid(measure, grid)?;
        serde_json::to_string_pretty(&rows)
            .map(json_body)
            .map_err(|e| ServeError::Internal(format!("serialization failed: {e}")))
    });
    Ok(Prepared { cache_key, compute })
}

/// Looks up a scenario preset by name.
fn preset(name: &str) -> Result<Scenario, ServeError> {
    let json =
        SCENARIO_PRESETS.iter().find(|(n, _)| *n == name).map(|(_, json)| *json).ok_or_else(
            || {
                let known: Vec<&str> = SCENARIO_PRESETS.iter().map(|(n, _)| *n).collect();
                ServeError::BadRequest(format!(
                    "unknown scenario preset `{name}` (known: {})",
                    known.join(", ")
                ))
            },
        )?;
    Scenario::from_json(json)
        .map_err(|e| ServeError::Internal(format!("preset `{name}` is invalid: {e}")))
}

fn prepare_scenario(request: &Request) -> Result<Prepared, ServeError> {
    if request.body.trim().is_empty() {
        return Err(ServeError::BadRequest(
            "expected a JSON body: {\"name\": ...} or a scenario/trace document".to_owned(),
        ));
    }
    let value: serde::Value = serde_json::from_str(&request.body)
        .map_err(|e| ServeError::BadRequest(format!("malformed JSON body: {e}")))?;

    // Named preset: {"name": "...", "seed": <optional u64>}.
    if let serde::Value::Object(fields) = &value {
        if fields.iter().any(|(k, _)| k == "name") {
            let mut name = None;
            let mut seed = None;
            for (key, field) in fields {
                match (key.as_str(), field) {
                    ("name", serde::Value::String(s)) => name = Some(s.clone()),
                    ("name", _) => {
                        return Err(ServeError::BadRequest("`name` must be a string".to_owned()))
                    }
                    ("seed", serde::Value::UInt(s)) => seed = Some(*s),
                    ("seed", serde::Value::Int(s)) if *s >= 0 => seed = Some(*s as u64),
                    ("seed", _) => {
                        return Err(ServeError::BadRequest(
                            "`seed` must be a non-negative integer".to_owned(),
                        ))
                    }
                    (other, _) => {
                        return Err(ServeError::BadRequest(format!(
                            "unknown field `{other}` in a named scenario request"
                        )))
                    }
                }
            }
            let name = name.expect("checked above");
            let mut scenario = preset(&name)?;
            if seed.is_some() {
                scenario.seed = seed;
            }
            scenario.validate().map_err(|e| ServeError::BadRequest(e.to_string()))?;
            let cache_key = key_for(Route::Scenario, &to_resolved_value(&scenario)?);
            let compute: Box<dyn FnOnce() -> Result<Vec<u8>, ServeError> + Send> =
                Box::new(move || Ok(json_body(results_to_json(&scenario.run()?)?)));
            return Ok(Prepared { cache_key, compute });
        }
    }

    // Versioned scenario document (`version` + `n` present): the DSL
    // with per-robot speeds, activation and geometry. Checked before
    // the legacy form so a v1 document with a typo fails with the
    // strict parser's diagnostic instead of silently degrading. The
    // cache key is the canonical hash of the *resolved* document, so
    // spelling defaults out (or not) hits the same entry.
    if is_scenario_value(&value) {
        let doc = ScenarioDoc::from_json(&request.body)
            .map_err(|e| ServeError::BadRequest(e.to_string()))?;
        let cache_key = key_for(Route::Scenario, &to_resolved_value(&doc)?);
        let compute: Box<dyn FnOnce() -> Result<Vec<u8>, ServeError> + Send> =
            Box::new(move || Ok(json_body(results_to_json(&doc.run()?)?)));
        return Ok(Prepared { cache_key, compute });
    }

    // Full declarative scenario: resolve it so defaults (strategy,
    // seed) land in the cache key.
    if let Ok(scenario) = Scenario::from_json(&request.body) {
        let cache_key = key_for(Route::Scenario, &to_resolved_value(&scenario)?);
        let compute: Box<dyn FnOnce() -> Result<Vec<u8>, ServeError> + Send> =
            Box::new(move || Ok(json_body(results_to_json(&scenario.run()?)?)));
        return Ok(Prepared { cache_key, compute });
    }

    // Recorded trace: replayed and verified by `run_document`. The raw
    // (canonicalized) document is the key.
    if RunTrace::from_json(&request.body).is_ok() {
        let cache_key = key_for(Route::Scenario, &value);
        let body = request.body.clone();
        let compute: Box<dyn FnOnce() -> Result<Vec<u8>, ServeError> + Send> =
            Box::new(move || Ok(json_body(results_to_json(&run_document(&body)?)?)));
        return Ok(Prepared { cache_key, compute });
    }

    // Surface the scenario parser's message — it is the common case.
    let reason = Scenario::from_json(&request.body)
        .err()
        .map_or_else(|| "unrecognized document".to_owned(), |e| e.to_string());
    Err(ServeError::BadRequest(format!("body is neither a scenario nor a trace: {reason}")))
}

fn prepare_supremum(request: &Request) -> Result<Prepared, ServeError> {
    if request.body.trim().is_empty() {
        return Err(ServeError::BadRequest(
            "expected a JSON body with at least {\"n\": ..., \"f\": ...}".to_owned(),
        ));
    }
    let query: SupremumQuery = serde_json::from_str(&request.body)
        .map_err(|e| ServeError::BadRequest(format!("malformed supremum query: {e}")))?;
    query.validate().map_err(|e| ServeError::BadRequest(e.to_string()))?;
    let cache_key = key_for(Route::Supremum, &to_resolved_value(&query)?);
    let compute: Box<dyn FnOnce() -> Result<Vec<u8>, ServeError> + Send> = Box::new(move || {
        let report = query.run()?;
        serde_json::to_string_pretty(&report)
            .map(json_body)
            .map_err(|e| ServeError::Internal(format!("serialization failed: {e}")))
    });
    Ok(Prepared { cache_key, compute })
}

fn prepare_optimize(request: &Request) -> Result<Prepared, ServeError> {
    if request.body.trim().is_empty() {
        return Err(ServeError::BadRequest(
            "expected a JSON body with at least {\"n\": ..., \"f\": ...}".to_owned(),
        ));
    }
    let mut config: OptimizeConfig = serde_json::from_str(&request.body)
        .map_err(|e| ServeError::BadRequest(format!("malformed optimize request: {e}")))?;
    // Validate (n, f) and the window eagerly (400, nothing cached),
    // and pin the resolved defaults into the config so implicit and
    // explicit spellings of the same run share a cache entry.
    config.params().map_err(|e| ServeError::BadRequest(e.to_string()))?;
    config.xmax = Some(config.resolved_xmax().map_err(|e| ServeError::BadRequest(e.to_string()))?);
    config.grid_points = Some(config.resolved_grid_points());
    config.objective().map_err(|e| ServeError::BadRequest(e.to_string()))?;
    let cache_key = key_for(Route::Optimize, &to_resolved_value(&config)?);
    let compute: Box<dyn FnOnce() -> Result<Vec<u8>, ServeError> + Send> = Box::new(move || {
        let report = faultline_opt::run(&config)?;
        serde_json::to_string_pretty(&report)
            .map(json_body)
            .map_err(|e| ServeError::Internal(format!("serialization failed: {e}")))
    });
    Ok(Prepared { cache_key, compute })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(path: &str, query: &[(&str, &str)]) -> Request {
        Request {
            method: "GET".to_owned(),
            path: path.to_owned(),
            query: query.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect(),
            body: String::new(),
            keep_alive: true,
        }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".to_owned(),
            path: path.to_owned(),
            query: Vec::new(),
            body: body.to_owned(),
            keep_alive: true,
        }
    }

    #[test]
    fn cr_resolves_and_computes() {
        let prepared =
            prepare(Route::Cr, &get("/v1/cr", &[("n", "3"), ("f", "1")])).expect("valid");
        assert!(prepared.cache_key.starts_with("/v1/cr|"));
        let body = (prepared.compute)().expect("closed form");
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("\"cr_upper\""), "got: {text}");
    }

    #[test]
    fn cr_rejects_missing_and_invalid_params() {
        assert!(matches!(
            prepare(Route::Cr, &get("/v1/cr", &[("n", "3")])),
            Err(ServeError::BadRequest(_))
        ));
        assert!(
            matches!(
                prepare(Route::Cr, &get("/v1/cr", &[("n", "2"), ("f", "2")])),
                Err(ServeError::BadRequest(_)),
            ),
            "f >= n is invalid"
        );
    }

    #[test]
    fn equivalent_cr_spellings_share_a_key() {
        let a = prepare(Route::Cr, &get("/v1/cr", &[("n", "3"), ("f", "1")])).unwrap();
        let b = prepare(Route::Cr, &get("/v1/cr", &[("f", "1"), ("n", "3")])).unwrap();
        assert_eq!(a.cache_key, b.cache_key, "query order is canonicalized away");
    }

    #[test]
    fn all_presets_are_valid_and_named_requests_resolve() {
        for (name, _) in SCENARIO_PRESETS {
            let prepared = prepare(
                Route::Scenario,
                &post("/v1/scenario", &format!("{{\"name\": \"{name}\"}}")),
            )
            .unwrap_or_else(|e| panic!("preset {name}: {e:?}"));
            assert!(prepared.cache_key.starts_with("/v1/scenario|"));
        }
    }

    #[test]
    fn byzantine_preset_confirms_only_the_true_target() {
        let prepared =
            prepare(Route::Scenario, &post("/v1/scenario", r#"{"name": "byzantine", "seed": 3}"#))
                .unwrap();
        let body = String::from_utf8((prepared.compute)().expect("scenario runs")).unwrap();
        assert!(body.contains("\"confirmed_position\""), "quorum runs record a confirmation");
        assert!(body.contains("\"false_claims\""), "lie_rate 0.75 liars assert false claims");
    }

    #[test]
    fn seeds_produce_distinct_cache_keys() {
        let base = post("/v1/scenario", r#"{"name": "randomized"}"#);
        let k0 = prepare(Route::Scenario, &base).unwrap().cache_key;
        let k7 =
            prepare(Route::Scenario, &post("/v1/scenario", r#"{"name": "randomized", "seed": 7}"#))
                .unwrap()
                .cache_key;
        let k8 =
            prepare(Route::Scenario, &post("/v1/scenario", r#"{"name": "randomized", "seed": 8}"#))
                .unwrap()
                .cache_key;
        assert_ne!(k7, k8);
        assert_ne!(k0, k7);
    }

    #[test]
    fn seed_on_deterministic_preset_is_rejected() {
        let result =
            prepare(Route::Scenario, &post("/v1/scenario", r#"{"name": "smoke", "seed": 1}"#));
        assert!(matches!(result, Err(ServeError::BadRequest(_))));
    }

    #[test]
    fn unknown_preset_lists_known_names() {
        let Err(err) = prepare(Route::Scenario, &post("/v1/scenario", r#"{"name": "nope"}"#))
        else {
            panic!("unknown preset must be rejected")
        };
        assert!(err.message().contains("smoke"), "got: {}", err.message());
    }

    #[test]
    fn full_scenario_document_resolves_defaults_into_key() {
        let explicit = post(
            "/v1/scenario",
            r#"{"n": 3, "f": 1, "strategy": "paper", "targets": [2.0, -4.5]}"#,
        );
        let implicit = post("/v1/scenario", r#"{"n": 3, "f": 1, "targets": [2.0, -4.5]}"#);
        let a = prepare(Route::Scenario, &explicit).unwrap().cache_key;
        let b = prepare(Route::Scenario, &implicit).unwrap().cache_key;
        assert_eq!(a, b, "the default strategy is resolved before keying");
    }

    #[test]
    fn versioned_documents_resolve_defaults_into_key() {
        let implicit =
            post("/v1/scenario", r#"{"version": 1, "n": 3, "f": 1, "targets": [2.0, -4.5]}"#);
        let explicit = post(
            "/v1/scenario",
            r#"{"version": 1, "n": 3, "f": 1, "strategy": "paper", "geometry": "Line",
                "targets": [2.0, -4.5]}"#,
        );
        let a = prepare(Route::Scenario, &implicit).unwrap().cache_key;
        let b = prepare(Route::Scenario, &explicit).unwrap().cache_key;
        assert_eq!(a, b, "resolved defaults key identically");
        // A v1 document with a typo'd field fails loudly instead of
        // falling through to the legacy parser.
        let typo = post("/v1/scenario", r#"{"version": 1, "n": 3, "f": 1, "tragets": [2.0]}"#);
        let Err(err) = prepare(Route::Scenario, &typo) else {
            panic!("typo'd v1 document must be rejected")
        };
        assert!(err.message().contains("tragets"), "got: {}", err.message());
        // Future versions are rejected with the version diagnostic.
        let future = post("/v1/scenario", r#"{"version": 9, "n": 3, "f": 1, "targets": [2.0]}"#);
        let Err(err) = prepare(Route::Scenario, &future) else {
            panic!("future-versioned document must be rejected")
        };
        assert!(err.message().contains("unsupported scenario version 9"), "{}", err.message());
    }

    fn example_scenario(name: &str) -> String {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../examples/scenarios")
            .join(name);
        std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
    }

    #[test]
    fn preset_files_reproduce_named_presets_byte_for_byte() {
        // Pinned regression: every canned file under examples/scenarios/
        // that mirrors a named preset must produce the *identical*
        // response bytes through POST /v1/scenario. A drifting preset
        // or a lossy DSL float path shows up here first.
        for (name, _) in SCENARIO_PRESETS {
            let named = prepare(
                Route::Scenario,
                &post("/v1/scenario", &format!("{{\"name\": \"{name}\"}}")),
            )
            .unwrap();
            let file_body = example_scenario(&format!("{name}.json"));
            let from_file = prepare(Route::Scenario, &post("/v1/scenario", &file_body)).unwrap();
            let a = (named.compute)().unwrap_or_else(|e| panic!("preset {name}: {e:?}"));
            let b = (from_file.compute)().unwrap_or_else(|e| panic!("file {name}: {e:?}"));
            assert_eq!(a, b, "preset `{name}` and its canned file diverge");
        }
    }

    #[test]
    fn half_line_example_runs_through_post() {
        let body = example_scenario("half_line.json");
        let prepared = prepare(Route::Scenario, &post("/v1/scenario", &body)).unwrap();
        let text = String::from_utf8((prepared.compute)().expect("half-line runs")).unwrap();
        assert!(text.contains("\"detection_time\""), "got: {text}");
        // Deterministic: the same document prepares to the same key
        // and the same bytes.
        let again = prepare(Route::Scenario, &post("/v1/scenario", &body)).unwrap();
        assert_eq!(again.cache_key, prepared.cache_key);
        assert_eq!(String::from_utf8((again.compute)().unwrap()).unwrap(), text);
    }

    #[test]
    fn heterogeneous_example_runs_through_post() {
        let body = example_scenario("heterogeneous.json");
        let prepared = prepare(Route::Scenario, &post("/v1/scenario", &body)).unwrap();
        let text = String::from_utf8((prepared.compute)().expect("heterogeneous runs")).unwrap();
        assert!(text.contains("\"confirmed_position\""), "quorum confirms: {text}");
    }

    #[test]
    fn supremum_body_resolves_defaults() {
        let a = prepare(Route::Supremum, &post("/v1/supremum", r#"{"n": 3, "f": 1}"#)).unwrap();
        let b = prepare(
            Route::Supremum,
            &post("/v1/supremum", r#"{"f": 1, "n": 3, "strategy": "paper"}"#),
        )
        .unwrap();
        assert_eq!(a.cache_key, b.cache_key);
        let body = (a.compute)().expect("small scan");
        assert!(String::from_utf8(body).unwrap().contains("\"measured\""));
    }

    #[test]
    fn optimize_body_resolves_defaults_into_key() {
        let implicit = prepare(
            Route::Optimize,
            &post("/v1/optimize", r#"{"n": 3, "f": 1, "budget": "tiny", "xmax": 8.0}"#),
        )
        .unwrap();
        assert!(implicit.cache_key.starts_with("/v1/optimize|"));
        // Spelling out the tiny budget's default grid and seed is the
        // same resolved request.
        let explicit = prepare(
            Route::Optimize,
            &post(
                "/v1/optimize",
                r#"{"f": 1, "n": 3, "budget": "tiny", "xmax": 8.0, "grid_points": 16, "seed": 0}"#,
            ),
        )
        .unwrap();
        assert_eq!(implicit.cache_key, explicit.cache_key);
        // A different seed is a different entry.
        let seeded = prepare(
            Route::Optimize,
            &post("/v1/optimize", r#"{"n": 3, "f": 1, "budget": "tiny", "xmax": 8.0, "seed": 7}"#),
        )
        .unwrap();
        assert_ne!(implicit.cache_key, seeded.cache_key);
        let body = (implicit.compute)().expect("tiny run");
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("\"best_found_cr\""), "got: {text}");
    }

    #[test]
    fn optimize_rejects_bad_bodies_before_caching() {
        for body in [
            "",
            "{",
            r#"{"f": 1}"#,
            r#"{"n": 2, "f": 3}"#,
            r#"{"n": 3, "f": 1, "budget": "enormous"}"#,
            r#"{"n": 3, "f": 1, "xmax": 0.5}"#,
        ] {
            assert!(
                matches!(
                    prepare(Route::Optimize, &post("/v1/optimize", body)),
                    Err(ServeError::BadRequest(_))
                ),
                "body `{body}` must be a 400"
            );
        }
    }

    #[test]
    fn table1_measure_flag_changes_the_key() {
        let plain = prepare(Route::Table1, &get("/v1/table1", &[])).unwrap();
        let measured = prepare(Route::Table1, &get("/v1/table1", &[("measure", "true")])).unwrap();
        assert_ne!(plain.cache_key, measured.cache_key);
        assert!(matches!(
            prepare(Route::Table1, &get("/v1/table1", &[("measure", "yes")])),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn table1_grid_is_part_of_the_resolved_request() {
        let default_grid = prepare(Route::Table1, &get("/v1/table1", &[])).unwrap();
        let explicit_default =
            prepare(Route::Table1, &get("/v1/table1", &[("grid", "64")])).unwrap();
        assert_eq!(
            default_grid.cache_key, explicit_default.cache_key,
            "spelling out the default grid is the same request"
        );
        let finer = prepare(Route::Table1, &get("/v1/table1", &[("grid", "1024")])).unwrap();
        assert_ne!(default_grid.cache_key, finer.cache_key);
        for bad in ["0", "1", "1000001", "-3", "lots"] {
            assert!(
                matches!(
                    prepare(Route::Table1, &get("/v1/table1", &[("grid", bad)])),
                    Err(ServeError::BadRequest(_))
                ),
                "grid `{bad}` must be rejected"
            );
        }
    }
}
