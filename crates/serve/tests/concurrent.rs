//! Concurrency semantics of the epoll server: single-flight
//! coalescing, HTTP/1.1 keep-alive, the memo tier, and slowloris
//! resistance. Sequencing is driven by the server's own gauges (never
//! by sleeps alone), so the tests are deterministic on slow machines.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use faultline_serve::client::{self, Response, Session};
use faultline_serve::{ServeConfig, ServerHandle};

/// A supremum body slow enough (hundreds of ms even in release) to
/// hold a worker while the herd piles onto its flight.
const SLOW_SUPREMUM: &str =
    r#"{"n": 41, "f": 20, "xmax": 300.0, "grid_points": 60000, "grid": true}"#;

fn spawn(config: ServeConfig) -> (ServerHandle, String) {
    let handle = ServerHandle::spawn(ServeConfig { addr: "127.0.0.1:0".to_owned(), ..config })
        .expect("bind on a free port");
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn post(addr: &str, path: &str, body: &str) -> Response {
    client::query_with_timeout(addr, "POST", path, Some(body), Duration::from_secs(120))
        .expect("loopback POST")
}

fn wait_for(what: &str, deadline: Duration, mut condition: impl FnMut() -> bool) {
    let start = Instant::now();
    while !condition() {
        assert!(start.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn a_thundering_herd_of_identical_misses_computes_exactly_once() {
    const HERD: usize = 7;
    let (handle, addr) = spawn(ServeConfig { threads: Some(2), ..ServeConfig::default() });
    let state = handle.state();

    // The creator parks first and its job occupies a worker...
    let creator_addr = addr.clone();
    let creator = std::thread::spawn(move || post(&creator_addr, "/v1/supremum", SLOW_SUPREMUM));
    wait_for("the creator's job to start computing", Duration::from_secs(30), || {
        state.metrics.workers_busy() >= 1
    });

    // ...then the herd sends the byte-different spellings of the same
    // canonical request while it is still in flight. The coalesced
    // gauge confirms every one of them parked on the creator's flight
    // (none raced past a landed flight into a fresh job).
    let herd: Vec<_> = (0..HERD)
        .map(|i| {
            let addr = addr.clone();
            // Whitespace varies per requester; the canonical key does not.
            let body = format!(
                "{{\"n\": 41,{} \"f\": 20, \"xmax\": 300.0, \"grid_points\": 60000, \"grid\": true}}",
                " ".repeat(i + 1)
            );
            std::thread::spawn(move || post(&addr, "/v1/supremum", &body))
        })
        .collect();
    wait_for("the whole herd to coalesce", Duration::from_secs(30), || {
        state.metrics.coalesced_requests() == HERD as u64
    });

    let reference = creator.join().expect("creator thread");
    assert_eq!(reference.status, 200, "creator answered: {}", reference.text());
    for follower in herd {
        let response = follower.join().expect("herd thread");
        assert_eq!(response.status, 200);
        assert_eq!(response.body, reference.body, "coalesced responses are byte-identical");
    }

    assert_eq!(state.metrics.pool_jobs(), 1, "eight requests, one computation");
    assert_eq!(state.metrics.coalesced_requests(), HERD as u64);
    assert_eq!(state.cache.misses(), HERD as u64 + 1, "every requester probed the cache once");
    let rendered = state.metrics.render(&state.cache);
    assert!(
        rendered.contains(&format!("faultline_coalesced_requests_total {HERD}")),
        "coalesced_requests exported: {rendered}"
    );
    handle.shutdown();
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let (handle, addr) = spawn(ServeConfig::default());
    let state = handle.state();

    let mut session = Session::new(&addr);
    let first = session.request("GET", "/v1/cr?n=5&f=2", None).expect("first request");
    assert_eq!(first.status, 200);
    for _ in 0..4 {
        let again = session.request("GET", "/v1/cr?n=5&f=2", None).expect("reused connection");
        assert_eq!(again.status, 200);
        assert_eq!(again.body, first.body);
    }
    assert!(session.is_connected(), "the connection survived all five requests");
    assert_eq!(state.metrics.connections(), 1, "five requests, one connection");
    assert_eq!(state.metrics.keepalive_reuses(), 4, "four requests after the first reused it");
    handle.shutdown();
}

#[test]
fn a_half_written_request_cannot_stall_other_connections() {
    let (handle, addr) = spawn(ServeConfig { threads: Some(1), ..ServeConfig::default() });

    // A slowloris peer: opens the connection, dribbles half a request
    // head, and then just... holds.
    let mut slow = TcpStream::connect(&addr).expect("slowloris connect");
    slow.write_all(b"GET /healthz HTTP/1.1\r\nHost: loop").expect("partial head");
    slow.flush().expect("flush partial head");

    // Every well-behaved client keeps getting answered promptly while
    // the half-written request sits in its own connection buffer.
    for _ in 0..5 {
        let start = Instant::now();
        let response =
            client::query_with_timeout(&addr, "GET", "/healthz", None, Duration::from_secs(5))
                .expect("healthy request while slowloris holds");
        assert_eq!(response.status, 200);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "requests answered while a peer dribbles"
        );
    }
    drop(slow);
    handle.shutdown();
}

#[test]
fn the_memo_tier_answers_cr_without_touching_the_pool() {
    let (handle, addr) = spawn(ServeConfig::default());
    let state = handle.state();
    assert!(!state.memo.is_empty(), "the lattice was precomputed at startup");

    let memoized = client::query(&addr, "GET", "/v1/cr?n=9&f=4", None).expect("memo GET");
    assert_eq!(memoized.status, 200);
    assert_eq!(memoized.header("X-Cache"), Some("memo"), "served from the precomputed lattice");
    assert_eq!(state.metrics.memo_hits(), 1);
    assert_eq!(state.metrics.pool_jobs(), 0, "GET /v1/cr never dispatched to the pool");
    assert_eq!(state.cache.misses(), 0, "nor to the LRU/compute path");
    let rendered = state.metrics.render(&state.cache);
    assert!(rendered.contains("faultline_cr_memo_hits_total 1"), "memo tier exported: {rendered}");
    handle.shutdown();

    // The memo tier is byte-identical to the computed path: the same
    // query against a memo-disabled server produces the same body.
    let (plain, plain_addr) = spawn(ServeConfig { memo_max_n: 0, ..ServeConfig::default() });
    let computed = client::query(&plain_addr, "GET", "/v1/cr?n=9&f=4", None).expect("computed GET");
    assert_eq!(computed.status, 200);
    assert_eq!(computed.header("X-Cache"), Some("miss"), "memo disabled: the compute path");
    assert_eq!(computed.body, memoized.body, "memo bytes equal computed bytes");
    plain.shutdown();
}

#[test]
fn pipelined_requests_on_one_connection_all_answer() {
    let (handle, addr) = spawn(ServeConfig::default());

    // Two back-to-back requests in a single write: the parser must
    // consume exactly one at a time and answer both in order.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .write_all(
            b"GET /healthz HTTP/1.1\r\nHost: l\r\n\r\nGET /v1/cr?n=3&f=1 HTTP/1.1\r\nHost: l\r\nConnection: close\r\n\r\n",
        )
        .expect("pipelined write");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
    let mut bytes = Vec::new();
    use std::io::Read;
    stream.read_to_end(&mut bytes).expect("read both responses");
    let text = String::from_utf8_lossy(&bytes);
    let answers = text.matches("HTTP/1.1 200 OK").count();
    assert_eq!(answers, 2, "both pipelined requests answered: {text}");
    assert!(text.contains("\"cr_upper\""), "the second response carries the CR report");
    handle.shutdown();
}
