//! Loopback integration tests: a real server on `127.0.0.1:0`, spoken
//! to over raw `TcpStream`s through the bundled client. Saturation and
//! drain sequencing is driven by the server's own gauges (never by
//! sleeps alone), so the tests are deterministic on slow machines.

use std::time::{Duration, Instant};

use faultline_serve::client::{self, Response, Session};
use faultline_serve::{ServeConfig, ServerHandle};

/// A supremum body slow enough (hundreds of ms even in release) to
/// hold a worker while the test sequences saturation around it. The
/// exact critical-point engine answers any grid size instantly, so a
/// deliberately dense scan must opt into the retained grid path.
const SLOW_SUPREMUM: &str =
    r#"{"n": 41, "f": 20, "xmax": 300.0, "grid_points": 60000, "grid": true}"#;
/// Same workload, one grid point apart: a distinct cache entry.
const SLOW_SUPREMUM_B: &str =
    r#"{"n": 41, "f": 20, "xmax": 300.0, "grid_points": 59999, "grid": true}"#;

fn spawn(config: ServeConfig) -> (ServerHandle, String) {
    let handle = ServerHandle::spawn(ServeConfig { addr: "127.0.0.1:0".to_owned(), ..config })
        .expect("bind on a free port");
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn get(addr: &str, path: &str) -> Response {
    client::query(addr, "GET", path, None).expect("loopback GET")
}

fn post(addr: &str, path: &str, body: &str) -> Response {
    client::query(addr, "POST", path, Some(body)).expect("loopback POST")
}

/// Polls `condition` until it holds or `deadline` elapses.
fn wait_for(what: &str, deadline: Duration, mut condition: impl FnMut() -> bool) {
    let start = Instant::now();
    while !condition() {
        assert!(start.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn health_cr_and_404s() {
    let (handle, addr) = spawn(ServeConfig::default());
    assert_eq!(get(&addr, "/healthz").status, 200);

    let cr = get(&addr, "/v1/cr?n=3&f=1");
    assert_eq!(cr.status, 200);
    assert!(cr.text().contains("\"cr_upper\""));

    assert_eq!(get(&addr, "/nope").status, 404);
    assert_eq!(post(&addr, "/v1/cr", "{}").status, 405);
    assert_eq!(get(&addr, "/v1/cr?n=3").status, 400);
    handle.shutdown();
}

#[test]
fn cache_hits_are_byte_identical_and_metrics_move() {
    let (handle, addr) = spawn(ServeConfig::default());

    let fresh = post(&addr, "/v1/scenario", r#"{"name": "smoke"}"#);
    assert_eq!(fresh.status, 200);
    assert_eq!(fresh.header("X-Cache"), Some("miss"));

    // Different spelling (whitespace, field order) of the same request
    // must hit the cache and return the exact same bytes.
    let cached = post(&addr, "/v1/scenario", r#"{  "name":"smoke"   }"#);
    assert_eq!(cached.status, 200);
    assert_eq!(cached.header("X-Cache"), Some("hit"));
    assert_eq!(cached.body, fresh.body, "cache hit is byte-identical");

    // Distinct seeds are distinct entries: a fresh computation, not a
    // hit on the unseeded run.
    let seeded = post(&addr, "/v1/scenario", r#"{"name": "randomized", "seed": 7}"#);
    assert_eq!(seeded.status, 200);
    assert_eq!(seeded.header("X-Cache"), Some("miss"));
    let reseeded = post(&addr, "/v1/scenario", r#"{"seed": 8, "name": "randomized"}"#);
    assert_eq!(reseeded.header("X-Cache"), Some("miss"), "seed 8 is not seed 7");
    assert_ne!(seeded.body, reseeded.body, "different seeds explore different sweeps");

    let metrics = get(&addr, "/metrics").text();
    assert!(
        metrics.contains("faultline_requests_total{route=\"/v1/scenario\",status=\"200\"} 4"),
        "scenario requests counted: {metrics}"
    );
    assert!(metrics.contains("faultline_cache_hits_total 1"), "one hit: {metrics}");
    assert!(metrics.contains("faultline_cache_misses_total 3"), "three misses: {metrics}");
    assert!(metrics.contains("faultline_request_latency_ms_count"), "histogram rendered");
    handle.shutdown();
}

#[test]
fn optimize_route_caches_resolved_configs() {
    let (handle, addr) = spawn(ServeConfig::default());

    let body = r#"{"n": 3, "f": 1, "budget": "tiny", "xmax": 8.0, "grid_points": 12}"#;
    let fresh = post(&addr, "/v1/optimize", body);
    assert_eq!(fresh.status, 200, "optimize failed: {}", fresh.text());
    assert_eq!(fresh.header("X-Cache"), Some("miss"));
    assert!(fresh.text().contains("\"best_found_cr\""));
    assert!(fresh.text().contains("\"crosscheck\""));

    // A reordered spelling of the same resolved run is a byte-identical
    // cache hit.
    let reordered = r#"{"xmax": 8.0, "f": 1, "grid_points": 12, "budget": "tiny", "n": 3}"#;
    let cached = post(&addr, "/v1/optimize", reordered);
    assert_eq!(cached.status, 200);
    assert_eq!(cached.header("X-Cache"), Some("hit"));
    assert_eq!(cached.body, fresh.body);

    // Wrong method and invalid pairs mirror the other POST routes.
    assert_eq!(get(&addr, "/v1/optimize").status, 405);
    assert_eq!(post(&addr, "/v1/optimize", r#"{"n": 2, "f": 3}"#).status, 400);

    let metrics = get(&addr, "/metrics").text();
    assert!(
        metrics.contains("faultline_requests_total{route=\"/v1/optimize\",status=\"200\"} 2"),
        "optimize requests counted per route: {metrics}"
    );
    handle.shutdown();
}

#[test]
fn saturated_queue_answers_503_while_light_routes_stay_up() {
    let config = ServeConfig {
        threads: Some(1),
        queue_capacity: 1,
        request_timeout: Duration::from_secs(120),
        ..ServeConfig::default()
    };
    let (handle, addr) = spawn(config);
    let state = handle.state();

    // Occupy the single worker...
    let addr_a = addr.clone();
    let slow_a = std::thread::spawn(move || post(&addr_a, "/v1/supremum", SLOW_SUPREMUM));
    wait_for("the worker to pick up the slow job", Duration::from_secs(30), || {
        state.metrics.workers_busy() == 1
    });

    // ...fill the only queue slot...
    let addr_b = addr.clone();
    let slow_b = std::thread::spawn(move || post(&addr_b, "/v1/supremum", SLOW_SUPREMUM_B));
    wait_for("the queue slot to fill", Duration::from_secs(30), || state.pool.queue_depth() == 1);

    // ...and the next heavy miss must bounce with backpressure.
    let rejected = get(&addr, "/v1/table1?measure=true");
    assert_eq!(rejected.status, 503);
    assert_eq!(rejected.header("Retry-After"), Some("1"));

    // Light routes and cache hits keep answering under saturation.
    assert_eq!(get(&addr, "/healthz").status, 200);
    let metrics = get(&addr, "/metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics.text().contains("faultline_rejected_total 1"));

    let a = slow_a.join().expect("no panic");
    let b = slow_b.join().expect("no panic");
    assert_eq!(a.status, 200, "in-flight work completed: {}", a.text());
    assert_eq!(b.status, 200, "queued work completed: {}", b.text());
    handle.shutdown();
}

#[test]
fn deadline_expiry_answers_504_and_still_warms_the_cache() {
    let config = ServeConfig {
        threads: Some(1),
        request_timeout: Duration::from_millis(10),
        ..ServeConfig::default()
    };
    let (handle, addr) = spawn(config);
    let state = handle.state();

    let timed_out = post(&addr, "/v1/supremum", SLOW_SUPREMUM);
    assert_eq!(timed_out.status, 504, "slower than the 10ms deadline");

    // The abandoned computation finishes in the background and inserts
    // its result, so the retry is an instant, inline cache hit.
    wait_for("the abandoned job to warm the cache", Duration::from_secs(60), || {
        state.cache.live_entries() >= 1
    });
    let retry = post(&addr, "/v1/supremum", SLOW_SUPREMUM);
    assert_eq!(retry.status, 200);
    assert_eq!(retry.header("X-Cache"), Some("hit"));
    handle.shutdown();
}

/// Timing harness behind `--ignored`: reproduces the cache-hit speedup
/// number reported in EXPERIMENTS.md. Run with
/// `cargo test --release -p faultline-serve --test loopback -- --ignored --nocapture`.
#[test]
#[ignore = "timing harness, not a correctness test"]
fn cache_hit_speedup_on_repeated_table1_workload() {
    let (handle, addr) = spawn(ServeConfig::default());
    // The paper-default grid (64) regenerates in about a millisecond in
    // release, which is too close to loopback overhead for a stable
    // ratio; a 1024-point empirical scan is the kind of workload the
    // cache exists for.
    let path = "/v1/table1?measure=true&grid=1024";

    let start = Instant::now();
    let fresh = get(&addr, path);
    let miss = start.elapsed();
    assert_eq!(fresh.status, 200);
    assert_eq!(fresh.header("X-Cache"), Some("miss"));

    const HITS: u32 = 50;
    let start = Instant::now();
    for _ in 0..HITS {
        let hit = get(&addr, path);
        assert_eq!(hit.header("X-Cache"), Some("hit"));
        assert_eq!(hit.body, fresh.body);
    }
    let hit = start.elapsed() / HITS;
    let speedup = miss.as_secs_f64() / hit.as_secs_f64();
    println!(
        "table1(measure, grid=1024) miss: {:.2} ms, hit: {:.3} ms over {HITS} requests, speedup {speedup:.1}x",
        miss.as_secs_f64() * 1e3,
        hit.as_secs_f64() * 1e3,
    );
    assert!(speedup >= 10.0, "expected >= 10x on cache hits, measured {speedup:.1}x");
    handle.shutdown();
}

#[test]
fn tight_cache_budget_evicts_oldest_first_and_recomputes_identically() {
    const A: &str = "/v1/cr?n=3&f=1";
    const B: &str = "/v1/cr?n=5&f=2";
    const C: &str = "/v1/cr?n=7&f=3";

    // This test pins LRU mechanics, so the closed-form memo tier (which
    // would answer /v1/cr before the cache is consulted) is disabled in
    // both spawns; the assertions themselves are unchanged.
    // Pre-flight on a roomy server: measure each entry's exact charge
    // (canonical key + body bytes) from the live-bytes gauge, and keep
    // the reference bodies for byte-identity checks after re-compute.
    let (roomy, addr) = spawn(ServeConfig { memo_max_n: 0, ..ServeConfig::default() });
    let state = roomy.state();
    let mut charges = Vec::new();
    let mut bodies = Vec::new();
    for path in [A, B, C] {
        let before = state.cache.live_bytes();
        let response = get(&addr, path);
        assert_eq!(response.status, 200);
        assert_eq!(response.header("X-Cache"), Some("miss"));
        charges.push(state.cache.live_bytes() - before);
        bodies.push(response.body);
    }
    roomy.shutdown();

    // One shard whose budget holds any two of the entries but not all
    // three, so the third insertion must evict exactly one entry.
    let budget: usize = charges.iter().sum::<usize>() - 1;
    let (handle, addr) = spawn(ServeConfig {
        cache_bytes: budget,
        cache_shards: 1,
        memo_max_n: 0,
        ..ServeConfig::default()
    });
    let state = handle.state();

    let miss_a = get(&addr, A);
    assert_eq!(miss_a.header("X-Cache"), Some("miss"));
    let miss_b = get(&addr, B);
    assert_eq!(miss_b.header("X-Cache"), Some("miss"));
    assert_eq!(state.cache.live_entries(), 2, "both entries fit the budget");
    assert_eq!(state.cache.live_bytes(), charges[0] + charges[1]);

    // Hit B: byte-identical, and refreshes B's recency so A becomes
    // the oldest entry.
    let hit_b = get(&addr, B);
    assert_eq!(hit_b.header("X-Cache"), Some("hit"));
    assert_eq!(hit_b.body, miss_b.body);

    // C overflows the budget: the oldest entry (A, not the refreshed
    // B) is evicted; the gauges move and stay within budget.
    let miss_c = get(&addr, C);
    assert_eq!(miss_c.header("X-Cache"), Some("miss"));
    assert_eq!(state.cache.live_entries(), 2, "one entry was evicted");
    assert_eq!(state.cache.live_bytes(), charges[1] + charges[2], "A's bytes were released");
    assert!(state.cache.live_bytes() <= budget);
    assert_eq!(get(&addr, B).header("X-Cache"), Some("hit"), "B survived the eviction");

    // A was genuinely evicted: re-requesting is a miss, and the
    // re-computed body is byte-identical to the original response.
    let recomputed_a = get(&addr, A);
    assert_eq!(recomputed_a.header("X-Cache"), Some("miss"), "A was evicted oldest-first");
    assert_eq!(recomputed_a.body, miss_a.body, "re-compute reproduces the exact bytes");
    assert_eq!(recomputed_a.body, bodies[0], "and matches the roomy server's bytes");

    // A's reinsertion overflowed the budget again and evicted C, not
    // the hit-refreshed B: had `get` not updated recency, B (inserted
    // earliest) would have been the victim and this would be a hit.
    assert_eq!(state.cache.live_entries(), 2);
    assert_eq!(state.cache.live_bytes(), charges[0] + charges[1]);
    assert_eq!(
        get(&addr, C).header("X-Cache"),
        Some("miss"),
        "C was the oldest this time (hits refreshed B's recency)"
    );

    assert_eq!(state.cache.hits(), 2);
    assert_eq!(state.cache.misses(), 5);
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_work_and_refuses_new() {
    let config = ServeConfig { threads: Some(1), ..ServeConfig::default() };
    let (handle, addr) = spawn(config);
    let state = handle.state();

    let addr_a = addr.clone();
    let in_flight = std::thread::spawn(move || post(&addr_a, "/v1/supremum", SLOW_SUPREMUM));
    wait_for("the worker to pick up the job", Duration::from_secs(30), || {
        state.metrics.workers_busy() == 1
    });

    // Shutdown must wait for the in-flight job, which still answers 200.
    handle.shutdown();
    let drained = in_flight.join().expect("no panic");
    assert_eq!(drained.status, 200, "drained, not dropped: {}", drained.text());

    // The listener is gone: new connections are refused.
    assert!(
        client::query_with_timeout(&addr, "GET", "/healthz", None, Duration::from_secs(2)).is_err(),
        "the drained server must not accept new connections"
    );
}

#[test]
fn idle_keep_alive_connections_do_not_block_drain() {
    let (handle, addr) = spawn(ServeConfig::default());

    // Two persistent connections: one has served a request and sits
    // idle, the other never sends a byte (a connected-but-silent peer).
    let mut session = Session::new(&addr);
    assert_eq!(session.request("GET", "/healthz", None).expect("keep-alive GET").status, 200);
    assert!(session.is_connected(), "the session held its connection open");
    let silent = std::net::TcpStream::connect(&addr).expect("silent connect");

    // Shutdown must return promptly even though both connections are
    // still open: idle keep-alive peers are torn down, not drained.
    let start = Instant::now();
    handle.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "drain was blocked by idle keep-alive connections"
    );

    // Both peers observe the close, and the port stops answering.
    assert!(
        session.request("GET", "/healthz", None).is_err(),
        "the idle session's connection was closed and cannot reconnect"
    );
    drop(silent);
    assert!(
        client::query_with_timeout(&addr, "GET", "/healthz", None, Duration::from_secs(2)).is_err(),
        "the drained server must not accept new connections"
    );
}
