//! Deterministic soak: a seeded mixed workload against a sharded
//! (SO_REUSEPORT) server. Ignored by default — CI runs it in the
//! release job with `cargo test --release -p faultline-serve --test
//! soak -- --ignored`.

use faultline_serve::loadgen::{self, LoadOptions};
use faultline_serve::{ServeConfig, ServerHandle};

struct Counters {
    connections: u64,
    keepalive_reuses: u64,
    memo_hits: u64,
    pool_jobs: u64,
    coalesced: u64,
    cache_hits: u64,
}

fn snapshot(shards: &[ServerHandle]) -> Vec<Counters> {
    shards
        .iter()
        .map(|shard| {
            let state = shard.state();
            Counters {
                connections: state.metrics.connections(),
                keepalive_reuses: state.metrics.keepalive_reuses(),
                memo_hits: state.metrics.memo_hits(),
                pool_jobs: state.metrics.pool_jobs(),
                coalesced: state.metrics.coalesced_requests(),
                cache_hits: state.cache.hits(),
            }
        })
        .collect()
}

#[test]
#[ignore = "soak workload; CI runs it in the release job"]
fn a_seeded_soak_against_two_shards_is_clean_and_reproducible() {
    // Two shards sharing one kernel-balanced port.
    let first = ServerHandle::spawn(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        reuse_port: true,
        ..ServeConfig::default()
    })
    .expect("shard 0");
    let addr = first.addr().to_string();
    let second = ServerHandle::spawn(ServeConfig {
        addr: addr.clone(),
        reuse_port: true,
        ..ServeConfig::default()
    })
    .expect("shard 1");
    let shards = [first, second];

    let options = LoadOptions {
        addr: Some(addr),
        requests: 20_000,
        concurrency: 8,
        seed: 42,
        ..LoadOptions::default()
    };

    let run1 = loadgen::run(&options).expect("first soak run");
    let mid = snapshot(&shards);
    let run2 = loadgen::run(&options).expect("second soak run");
    let end = snapshot(&shards);

    for (label, run) in [("first", &run1), ("second", &run2)] {
        assert_eq!(run.errors, 0, "{label} run had transport errors");
        assert_eq!(run.requests, options.requests, "{label} run completed every request");
        // The workload induces no saturation, so *every* response is a
        // 200 — no 5xx of any kind.
        assert_eq!(
            run.statuses.get(&200).copied(),
            Some(options.requests),
            "{label} run statuses: {:?}",
            run.statuses
        );
        assert_eq!(run.statuses.len(), 1, "{label} run statuses: {:?}", run.statuses);
    }

    // Same seed ⇒ identical request streams ⇒ identical digest, even
    // though the kernel balanced connections across shards differently.
    assert_eq!(run1.digest, run2.digest, "the soak digest is seed-deterministic");

    // Counters only ever move forward, and the load actually landed on
    // both shards.
    for (shard, (before, after)) in mid.iter().zip(end.iter()).enumerate() {
        assert!(after.connections >= before.connections, "shard {shard} connections regressed");
        assert!(
            after.keepalive_reuses >= before.keepalive_reuses,
            "shard {shard} keep-alive reuses regressed"
        );
        assert!(after.memo_hits >= before.memo_hits, "shard {shard} memo hits regressed");
        assert!(after.pool_jobs >= before.pool_jobs, "shard {shard} pool jobs regressed");
        assert!(after.coalesced >= before.coalesced, "shard {shard} coalesced regressed");
        assert!(after.cache_hits >= before.cache_hits, "shard {shard} cache hits regressed");
    }
    // The load landed: the client fleet connected, the cr mix exercised
    // the memo tier. (Per-shard arrival is up to the kernel's reuseport
    // hash, so only the aggregate is asserted.)
    let total_connections: u64 = end.iter().map(|c| c.connections).sum();
    assert!(total_connections >= 8, "the client fleet connected: {total_connections}");
    let total_memo: u64 = end.iter().map(|c| c.memo_hits).sum();
    assert!(total_memo > 0, "the cr mix exercised the memo tier");

    for shard in shards {
        shard.shutdown();
    }
}
