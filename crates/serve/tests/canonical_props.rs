//! Property tests for the canonical request hashing that keys the
//! response cache: stability under JSON field reordering, numeric
//! unification, and seed-disjointness of scenario cache entries.

use std::sync::Arc;

use faultline_core::query::{canonical_hash64, canonical_string};
use faultline_serve::cache::ResponseCache;
use faultline_serve::handlers::prepare;
use faultline_serve::http::Request;
use faultline_serve::router::Route;
use proptest::prelude::*;

/// Builds an object whose `i`-th field is named `k<i>` with a value of
/// a kind chosen by `kinds[i]`.
fn object_from(kinds: &[u32], values: &[i64]) -> Vec<(String, serde::Value)> {
    kinds
        .iter()
        .zip(values)
        .enumerate()
        .map(|(i, (kind, &v))| {
            let value = match kind % 5 {
                0 => serde::Value::Int(v),
                1 => serde::Value::Float(v as f64 + 0.5),
                2 => serde::Value::String(format!("s{v}")),
                3 => serde::Value::Array(vec![serde::Value::Int(v), serde::Value::Bool(v > 0)]),
                _ => serde::Value::Object(vec![
                    ("inner".to_owned(), serde::Value::Int(v)),
                    ("flag".to_owned(), serde::Value::Null),
                ]),
            };
            (format!("k{i}"), value)
        })
        .collect()
}

fn scenario_request(seed: u64) -> Request {
    Request {
        method: "POST".to_owned(),
        path: "/v1/scenario".to_owned(),
        query: Vec::new(),
        body: format!("{{\"name\": \"randomized\", \"seed\": {seed}}}"),
        keep_alive: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Reordering an object's fields never changes the canonical
    /// string (and therefore never changes the 64-bit hash).
    #[test]
    fn canonical_form_is_stable_under_field_reordering(
        kinds in prop::collection::vec(0u32..5, 1usize..8),
        values in prop::collection::vec(-1000i64..1000, 8),
        rotation in 0usize..8,
        reverse in any::<bool>(),
    ) {
        let fields = object_from(&kinds, &values[..kinds.len()]);
        let mut shuffled = fields.clone();
        shuffled.rotate_left(rotation % fields.len().max(1));
        if reverse {
            shuffled.reverse();
        }
        let a = serde::Value::Object(fields);
        let b = serde::Value::Object(shuffled);
        prop_assert_eq!(canonical_string(&a), canonical_string(&b));
        prop_assert_eq!(canonical_hash64(&a), canonical_hash64(&b));
    }

    /// Integral floats and integers canonicalize identically — the
    /// same request sent with `"n": 3` or `"n": 3.0` shares one entry.
    #[test]
    fn integral_floats_unify_with_integers(v in -100_000i64..100_000) {
        let as_int = serde::Value::Object(vec![("n".to_owned(), serde::Value::Int(v))]);
        let as_float =
            serde::Value::Object(vec![("n".to_owned(), serde::Value::Float(v as f64))]);
        prop_assert_eq!(canonical_string(&as_int), canonical_string(&as_float));
    }

    /// Non-integral floats must NOT unify with their truncation.
    #[test]
    fn fractional_floats_stay_distinct(v in -1000i64..1000) {
        let exact = serde::Value::Object(vec![("x".to_owned(), serde::Value::Int(v))]);
        let off =
            serde::Value::Object(vec![("x".to_owned(), serde::Value::Float(v as f64 + 0.25))]);
        prop_assert_ne!(canonical_string(&exact), canonical_string(&off));
    }

    /// Two scenario requests that differ only in their seed resolve to
    /// different cache keys, and populating the cache under one seed
    /// never answers a lookup for the other.
    #[test]
    fn distinct_seeds_never_share_a_cache_entry(
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        prop_assume!(seed_a != seed_b);
        let key_a = prepare(Route::Scenario, &scenario_request(seed_a))
            .expect("valid request").cache_key;
        let key_b = prepare(Route::Scenario, &scenario_request(seed_b))
            .expect("valid request").cache_key;
        prop_assert_ne!(&key_a, &key_b);

        let cache = ResponseCache::new(1 << 16, 4);
        cache.insert(key_a.clone(), Arc::from(&b"seed-a-body"[..]));
        prop_assert!(cache.get(&key_b).is_none(), "seed B must miss");
        let hit = cache.get(&key_a).expect("seed A must hit");
        prop_assert_eq!(&hit[..], b"seed-a-body");
    }

    /// The same seed written as different JSON spellings (field order)
    /// resolves to the same cache key.
    #[test]
    fn seed_requests_are_order_insensitive(seed in any::<u64>()) {
        let reordered = Request {
            method: "POST".to_owned(),
            path: "/v1/scenario".to_owned(),
            query: Vec::new(),
            body: format!("{{\"seed\": {seed}, \"name\": \"randomized\"}}"),
            keep_alive: true,
        };
        let a = prepare(Route::Scenario, &scenario_request(seed)).expect("valid").cache_key;
        let b = prepare(Route::Scenario, &reordered).expect("valid").cache_key;
        prop_assert_eq!(a, b);
    }
}
